#include "net/frame_channel.h"

#include <atomic>

#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace mar::net {
namespace {

// Live-mode hop marker: wall-clock instants on the network track, so a
// UDP deployment produces the same trace shape as the simulator.
void trace_udp(const wire::FramePacket& pkt, const char* name) {
  auto& tracer = telemetry::Tracer::instance();
  if (!tracer.enabled() || !pkt.header.trace.active()) return;
  static const bool registered = [&tracer] {
    tracer.set_track_name(telemetry::kNetworkTrack, "network");
    return true;
  }();
  (void)registered;
  tracer.instant(telemetry::kNetworkTrack, name, telemetry::trace_wallclock_now(),
                 pkt.header.client, pkt.header.frame, pkt.header.stage,
                 static_cast<double>(pkt.wire_size()), pkt.header.trace.trace_id);
}

// Recovery markers carry the message id in `value` — there is no frame
// header to borrow ids from at the fragment layer.
void trace_recovery(const char* name, std::uint32_t message_id) {
  auto& tracer = telemetry::Tracer::instance();
  if (!tracer.enabled()) return;
  tracer.instant(telemetry::kNetworkTrack, name, telemetry::trace_wallclock_now(),
                 ClientId::invalid(), FrameId::invalid(), Stage::kPrimary,
                 static_cast<double>(message_id));
}

// Process-wide recovery counters, shared by every channel (and by the
// simulator's mirrored loss-recovery path in sim::SimNetwork).
struct RecoveryCounters {
  telemetry::Counter& rtx;
  telemetry::Counter& nacks;
  telemetry::Counter& fec_repairs;
  telemetry::Counter& unrecoverable;
};
RecoveryCounters& recovery_counters() {
  static RecoveryCounters counters = [] {
    auto& r = telemetry::MetricRegistry::instance();
    return RecoveryCounters{
        r.counter("mar_net_rtx_total", "Fragments retransmitted in answer to NACKs"),
        r.counter("mar_net_nacks_total", "NACK control datagrams sent by receivers"),
        r.counter("mar_net_fec_repairs_total",
                  "Fragments rebuilt from XOR parity without a round trip"),
        r.counter("mar_net_frames_unrecoverable_total",
                  "Frames abandoned after FEC+retransmission could not complete them"),
    };
  }();
  return counters;
}

}  // namespace

std::uint32_t FrameChannel::allocate_id_space() {
  static std::atomic<std::uint32_t> next_block{0};
  return (next_block.fetch_add(1, std::memory_order_relaxed) & 0xFFFu) << 20;
}

bool FrameChannel::harness_send(const std::vector<std::uint8_t>& datagram,
                                const SockAddr& dst, Status* first_error) {
  if (opts_.tx_loss_rate > 0.0 && loss_rng_.bernoulli(opts_.tx_loss_rate)) {
    ++harness_dropped_;
    return true;  // "sent" into the void, like a real lossy link
  }
  const auto result = socket_.send_to(datagram, dst);
  if (!result.is_ok()) {
    if (first_error != nullptr && first_error->is_ok()) *first_error = result.status();
    return false;
  }
  return true;
}

Status FrameChannel::send(const wire::FramePacket& pkt, const SockAddr& dst) {
  const std::vector<std::uint8_t> message = wire::serialize(pkt);
  const std::uint32_t id = next_message_id_++;
  auto fragments = fragment_message(message, id);
  Status error = Status::ok();
  for (const auto& frag : fragments) {
    ++fragments_sent_;
    harness_send(frag, dst, &error);
    if (!error.is_ok()) break;
  }
  if (error.is_ok() && opts_.fec_group > 0) {
    for (const auto& parity : fec_parity_fragments(message, id, opts_.fec_group)) {
      harness_send(parity, dst, &error);
      if (!error.is_ok()) break;
    }
  }
  if (!error.is_ok()) {
    ++send_errors_;
    telemetry::MetricRegistry::instance()
        .counter("mar_net_send_errors_total", "FrameChannel messages that failed mid-send")
        .inc();
    return error;
  }
  if (opts_.enable_rtx) {
    rtx_.retain(id, std::move(fragments), RtxController::Clock::now());
  }
  ++sent_;
  trace_udp(pkt, telemetry::spans::kUdpTx);
  return Status::ok();
}

void FrameChannel::handle_control(const UdpSocket::Datagram& datagram) {
  if (const auto ack = parse_ack(datagram.data)) {
    rtx_.handle_ack(*ack);
    return;
  }
  const auto nack = parse_nack(datagram.data);
  if (!nack) return;
  const auto resend = rtx_.handle_nack(*nack);
  Status error = Status::ok();
  for (const auto* frag : resend) {
    ++rtx_fragments_sent_;
    harness_send(*frag, datagram.from, &error);
  }
  if (!resend.empty()) {
    recovery_counters().rtx.inc(resend.size());
    trace_recovery(telemetry::spans::kUdpRtx, nack->message_id);
  }
}

void FrameChannel::housekeeping() {
  const auto now = RtxController::Clock::now();
  if (opts_.enable_rtx) {
    auto due = rtx_.due(reassembler_, now);
    for (const auto& decision : due.nacks) {
      const auto origin = origin_.find(decision.id);
      if (origin == origin_.end()) continue;
      // First NACK for this message: everything still missing now was
      // (almost certainly) lost on the wire. Later rounds re-request a
      // subset of the same fragments, so only the first one counts.
      if (loss_counted_.insert(decision.id).second) {
        fragments_lost_observed_ += decision.missing.size();
      }
      const auto nack =
          encode_nack(NackInfo{decision.id, decision.count, decision.missing});
      (void)socket_.send_to(nack, origin->second);  // control: never harness-dropped
      recovery_counters().nacks.inc();
      trace_recovery(telemetry::spans::kUdpNack, decision.id);
    }
    for (std::uint32_t id : due.abandon) {
      reassembler_.abandon(id);
      origin_.erase(id);
      ++frames_unrecoverable_;
      recovery_counters().unrecoverable.inc();
      trace_recovery(telemetry::spans::kUnrecoverable, id);
    }
    rtx_.expire_retained(now);
  }
  reassembler_.garbage_collect();
  // GC expiry and cap eviction both end an incoming frame for good.
  const std::uint64_t gone = reassembler_.expired() + reassembler_.evicted();
  if (gone > counted_expired_) {
    const std::uint64_t delta = gone - counted_expired_;
    frames_unrecoverable_ += delta;
    recovery_counters().unrecoverable.inc(delta);
    counted_expired_ = gone;
  }
  // Keep the NACK-target map (and loss bookkeeping) in lockstep with
  // the reassembly window; settled ids never NACK again (done_ memory).
  if (!origin_.empty() || !loss_counted_.empty()) {
    std::unordered_set<std::uint32_t> live;
    for (const auto& m : reassembler_.pending_messages()) live.insert(m.id);
    for (auto it = origin_.begin(); it != origin_.end();) {
      it = live.count(it->first) == 0 ? origin_.erase(it) : std::next(it);
    }
    for (auto it = loss_counted_.begin(); it != loss_counted_.end();) {
      it = live.count(*it) == 0 ? loss_counted_.erase(it) : std::next(it);
    }
  }
  publish_receiver_loss();
}

double FrameChannel::receiver_loss_ratio() const {
  const std::uint64_t denom = reassembler_.fragments_expected_done();
  if (denom == 0) return 0.0;
  const std::uint64_t lost = reassembler_.fec_repairs() + fragments_lost_observed_;
  return static_cast<double>(lost) / static_cast<double>(denom);
}

void FrameChannel::publish_receiver_loss() {
  if (reassembler_.fragments_expected_done() == 0) return;  // nothing settled yet
  if (loss_gauge_ == nullptr) {
    const auto addr = socket_.local_addr();
    if (!addr.is_ok()) return;
    loss_gauge_ = &telemetry::MetricRegistry::instance().gauge(
        "mar_net_receiver_loss_ratio",
        "Receiver-observed fragment loss estimate: (FEC repairs + fragments "
        "missing at first NACK) / expected fragments of settled messages",
        {{"channel", std::to_string(addr.value().port)}});
  }
  loss_gauge_->set(receiver_loss_ratio());
}

std::optional<FrameChannel::Received> FrameChannel::poll(int timeout_ms) {
  if (!socket_.is_open()) return std::nullopt;
  if (timeout_ms > 0 && !socket_.wait_readable(timeout_ms)) {
    housekeeping();
    return std::nullopt;
  }
  while (auto datagram = socket_.receive()) {
    if (is_control_datagram(datagram->data)) {
      if (opts_.enable_rtx) handle_control(*datagram);
      continue;
    }
    auto added = reassembler_.add_ex(datagram->data);
    if (added.accepted) {
      if (added.repaired > 0) {
        recovery_counters().fec_repairs.inc(added.repaired);
        trace_recovery(telemetry::spans::kFecRepair, added.id);
      }
      if (!added.message) origin_[added.id] = datagram->from;
    }
    if (!added.message) continue;
    const bool was_nacked = rtx_.nacked(added.id);
    rtx_.forget(added.id);
    origin_.erase(added.id);
    if (opts_.enable_rtx) {
      (void)socket_.send_to(encode_ack(added.id), datagram->from);
    }
    if (added.message_repairs > 0 && !was_nacked) ++frames_fec_only_;
    if (auto pkt = wire::parse(*added.message)) {
      ++received_;
      trace_udp(*pkt, telemetry::spans::kUdpRx);
      housekeeping();
      return Received{std::move(*pkt), datagram->from, added.message_repairs};
    }
    // Complete reassembly, undecodable bytes: corrupt or foreign
    // traffic. Counted instead of silently swallowed.
    ++parse_errors_;
    telemetry::MetricRegistry::instance()
        .counter("mar_net_parse_errors_total",
                 "reassembled messages that failed wire::parse")
        .inc();
  }
  housekeeping();
  return std::nullopt;
}

void FrameChannel::tick() {
  if (!socket_.is_open()) return;
  housekeeping();
}

}  // namespace mar::net
