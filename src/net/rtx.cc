#include "net/rtx.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/bytes.h"

namespace mar::net {
namespace {
constexpr std::uint8_t kNackMagic = 0xF9;
constexpr std::uint8_t kAckMagic = 0xFA;
}  // namespace

std::vector<std::uint8_t> encode_nack(const NackInfo& nack) {
  ByteWriter w(9 + 2 * nack.missing.size());
  w.put_u8(kNackMagic);
  w.put_u32(nack.message_id);
  w.put_u16(nack.count);
  w.put_u16(static_cast<std::uint16_t>(nack.missing.size()));
  for (std::uint16_t idx : nack.missing) w.put_u16(idx);
  return std::move(w).take();
}

std::optional<NackInfo> parse_nack(std::span<const std::uint8_t> datagram) {
  if (datagram.empty() || datagram[0] != kNackMagic) return std::nullopt;
  ByteReader r(datagram);
  r.get_u8();
  NackInfo nack;
  nack.message_id = r.get_u32();
  nack.count = r.get_u16();
  const std::uint16_t n = r.get_u16();
  if (!r.ok() || r.remaining() != 2u * n) return std::nullopt;
  nack.missing.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) nack.missing.push_back(r.get_u16());
  return nack;
}

std::vector<std::uint8_t> encode_ack(std::uint32_t message_id) {
  ByteWriter w(5);
  w.put_u8(kAckMagic);
  w.put_u32(message_id);
  return std::move(w).take();
}

std::optional<std::uint32_t> parse_ack(std::span<const std::uint8_t> datagram) {
  if (datagram.size() != 5 || datagram[0] != kAckMagic) return std::nullopt;
  ByteReader r(datagram);
  r.get_u8();
  return r.get_u32();
}

bool is_control_datagram(std::span<const std::uint8_t> datagram) {
  return !datagram.empty() && (datagram[0] == kNackMagic || datagram[0] == kAckMagic);
}

void RtxController::retain(std::uint32_t id, std::vector<std::vector<std::uint8_t>> fragments,
                           Clock::time_point now) {
  if (retained_.size() >= cfg_.max_retained && retained_.find(id) == retained_.end()) {
    auto oldest = retained_.begin();
    for (auto it = retained_.begin(); it != retained_.end(); ++it) {
      if (it->second.since < oldest->second.since) oldest = it;
    }
    retained_.erase(oldest);
  }
  RetainedMessage& m = retained_[id];
  m.fragments = std::move(fragments);
  m.budget_left = cfg_.rtx_budget;
  m.since = now;
}

std::vector<const std::vector<std::uint8_t>*> RtxController::handle_nack(
    const NackInfo& nack) {
  std::vector<const std::vector<std::uint8_t>*> out;
  const auto it = retained_.find(nack.message_id);
  if (it == retained_.end()) return out;
  RetainedMessage& m = it->second;
  for (std::uint16_t idx : nack.missing) {
    if (idx >= m.fragments.size()) continue;
    if (m.budget_left == 0) {
      ++budget_exhausted_;
      break;
    }
    out.push_back(&m.fragments[idx]);
    --m.budget_left;
    ++rtx_fragments_;
  }
  return out;
}

void RtxController::expire_retained(Clock::time_point now) {
  for (auto it = retained_.begin(); it != retained_.end();) {
    if (now - it->second.since > cfg_.retain_for) {
      it = retained_.erase(it);
    } else {
      ++it;
    }
  }
}

RtxController::Due RtxController::due(const Reassembler& reassembler, Clock::time_point now) {
  Due out;
  const auto pending = reassembler.pending_messages();
  std::unordered_set<std::uint32_t> live;
  live.reserve(pending.size());
  for (const auto& m : pending) {
    live.insert(m.id);
    NackSchedule& s = schedule_[m.id];
    if (!s.armed || m.received > s.seen_received) {
      // New message, or progress since the last look: the next NACK
      // waits for the flow to stall, not for a fixed point in time.
      s.seen_received = m.received;
      if (s.rounds == 0) s.next_at = m.last_activity + cfg_.nack_timeout;
      s.armed = true;
    }
    if (now < s.next_at) continue;
    if (s.rounds >= cfg_.max_rounds) {
      out.abandon.push_back(m.id);
      ++frames_abandoned_;
      continue;
    }
    auto missing = reassembler.missing_fragments(m.id);
    if (missing.empty()) continue;
    out.nacks.push_back(NackDecision{m.id, m.count, std::move(missing)});
    ++s.rounds;
    ++nacks_sent_;
    const double mult = std::pow(cfg_.backoff, s.rounds);
    s.next_at = now + std::chrono::duration_cast<Clock::duration>(cfg_.nack_timeout * mult);
  }
  // Drop schedule state for messages the reassembler no longer tracks
  // (completed, GC'd, or abandoned) so this map stays bounded too.
  for (auto it = schedule_.begin(); it != schedule_.end();) {
    if (live.count(it->first) == 0) {
      it = schedule_.erase(it);
    } else {
      ++it;
    }
  }
  for (std::uint32_t id : out.abandon) schedule_.erase(id);
  return out;
}

}  // namespace mar::net
