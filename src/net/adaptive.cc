#include "net/adaptive.h"

#include <algorithm>

namespace mar::net {

AdaptiveQuality::AdaptiveQuality(AdaptiveConfig cfg) : cfg_(cfg) {
  cfg_.max_level = std::max(cfg_.max_level, cfg_.min_level);
  level_ = std::clamp(cfg_.initial_level, cfg_.min_level, cfg_.max_level);
}

void AdaptiveQuality::on_frame(std::size_t fragments_sent,
                               std::size_t fragments_retransmitted, bool delivered) {
  ++frames_;
  ++since_downgrade_;
  double frame_loss;
  if (!delivered) {
    frame_loss = 1.0;
  } else if (fragments_sent == 0) {
    frame_loss = 0.0;
  } else {
    frame_loss = std::min(
        1.0, static_cast<double>(fragments_retransmitted) / static_cast<double>(fragments_sent));
  }
  ewma_ = cfg_.ewma_alpha * frame_loss + (1.0 - cfg_.ewma_alpha) * ewma_;

  if (ewma_ > cfg_.down_threshold) {
    clean_streak_ = 0;
    if (level_ > cfg_.min_level && since_downgrade_ >= cfg_.cooldown_frames) {
      --level_;
      ++downgrades_;
      since_downgrade_ = 0;
    }
    return;
  }
  if (ewma_ < cfg_.up_threshold && frame_loss == 0.0) {
    if (++clean_streak_ >= cfg_.hold_frames && level_ < cfg_.max_level) {
      ++level_;
      ++upgrades_;
      clean_streak_ = 0;
    }
  } else {
    clean_streak_ = 0;
  }
}

double AdaptiveQuality::scale() const {
  if (cfg_.max_level == cfg_.min_level) return 1.0;
  const double frac = static_cast<double>(level_ - cfg_.min_level) /
                      static_cast<double>(cfg_.max_level - cfg_.min_level);
  return 0.4 + 0.6 * frac;
}

}  // namespace mar::net
