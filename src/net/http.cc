#include "net/http.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/log.h"
#include "telemetry/build_info.h"
#include "telemetry/profiler.h"

namespace mar::net {
namespace {

constexpr int kAcceptPollMs = 100;   // stop-flag check cadence
constexpr int kRequestTimeoutMs = 2000;
constexpr std::size_t kMaxRequestBytes = 8192;

std::string make_response(int code, const char* reason, const std::string& content_type,
                          const std::string& body) {
  std::ostringstream out;
  out << "HTTP/1.1 " << code << ' ' << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // a signal mid-write is not an abort
    if (n <= 0) return;  // client went away (EPIPE/ECONNRESET): stop quietly
    off += static_cast<std::size_t>(n);
  }
}

enum class ReadHeadResult { kOk, kClosedOrTimeout, kTooLarge };

// Read until the end of the request head ("\r\n\r\n"), timeout, or the
// size cap. A scrape request fits in one segment, but don't rely on it.
ReadHeadResult read_request_head(int fd, std::string* head) {
  char buf[2048];
  while (true) {
    if (head->find("\r\n\r\n") != std::string::npos ||
        head->find("\n\n") != std::string::npos) {
      return ReadHeadResult::kOk;
    }
    if (head->size() >= kMaxRequestBytes) return ReadHeadResult::kTooLarge;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, kRequestTimeoutMs) <= 0) return ReadHeadResult::kClosedOrTimeout;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return ReadHeadResult::kClosedOrTimeout;
    head->append(buf, static_cast<std::size_t>(n));
  }
}

// "GET /metrics?x=1 HTTP/1.1" -> method, path, query ("" if none).
bool parse_request_line(const std::string& head, std::string* method, std::string* path,
                        std::string* query) {
  const std::size_t eol = head.find_first_of("\r\n");
  const std::string line = head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  *method = line.substr(0, sp1);
  *path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  query->clear();
  const std::size_t qmark = path->find('?');
  if (qmark != std::string::npos) {
    *query = path->substr(qmark + 1);
    path->resize(qmark);
  }
  return !method->empty() && !path->empty() && path->front() == '/' &&
         line.compare(sp2 + 1, 5, "HTTP/") == 0;
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, std::string content_type, Handler fn) {
  handle_query(std::move(path), std::move(content_type),
               [fn = std::move(fn)](const std::string&) { return fn(); });
}

void HttpServer::handle_query(std::string path, std::string content_type, HandlerEx fn) {
  routes_.push_back(Route{std::move(path), std::move(content_type), std::move(fn)});
}

Status HttpServer::start(std::uint16_t port) {
  if (running_.load()) return Status(StatusCode::kInternal, "already running");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status(StatusCode::kInternal, std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const Status err(StatusCode::kUnavailable, std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return err;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  stop_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { serve_loop(); });
  return Status::ok();
}

void HttpServer::stop() {
  if (!running_.load()) return;
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false);
}

void HttpServer::serve_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  std::string head;
  switch (read_request_head(fd, &head)) {
    case ReadHeadResult::kOk:
      break;
    case ReadHeadResult::kClosedOrTimeout:
      return;  // slow or vanished client: drop silently
    case ReadHeadResult::kTooLarge:
      send_all(fd, make_response(431, "Request Header Fields Too Large", "text/plain",
                                 "request head exceeds 8 KiB\n"));
      return;
  }

  std::string method, path, query;
  if (!parse_request_line(head, &method, &path, &query)) {
    send_all(fd, make_response(400, "Bad Request", "text/plain", "bad request\n"));
    return;
  }
  if (method != "GET") {
    send_all(fd, make_response(405, "Method Not Allowed", "text/plain",
                               "only GET is supported\n"));
    return;
  }
  for (const Route& route : routes_) {
    if (route.path == path) {
      send_all(fd, make_response(200, "OK", route.content_type, route.fn(query)));
      return;
    }
  }
  send_all(fd, make_response(404, "Not Found", "text/plain", "not found: " + path + "\n"));
}

void serve_metrics(HttpServer& server, telemetry::MetricRegistry& registry,
                   std::function<std::string()> statusz_extra) {
  telemetry::register_build_info_metric();
  server.handle("/metrics", "text/plain; version=0.0.4; charset=utf-8",
                [&registry] { return registry.prometheus_text(); });
  server.handle("/healthz", "text/plain", [] { return std::string("ok\n"); });
  server.handle("/statusz", "text/plain",
                [&registry, extra = std::move(statusz_extra)] {
                  std::string body = telemetry::build_info_line() + '\n';
                  body += registry.statusz_text();
                  if (extra) {
                    body += '\n';
                    body += extra();
                  }
                  return body;
                });
}

std::string query_param(const std::string& query, const std::string& key) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return "";
}

namespace {

long query_long(const std::string& query, const std::string& key, long fallback) {
  const std::string v = query_param(query, key);
  if (v.empty()) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

}  // namespace

void serve_pprof(HttpServer& server) {
  telemetry::Profiler::instance().publish_to_registry();
  server.handle("/debug/pprof", "text/plain", [] {
    return std::string(
        "mar profiling endpoints:\n"
        "  /debug/pprof/profile?seconds=5&hz=99[&format=speedscope]  CPU capture\n"
        "  /debug/pprof/heap                                         alloc attribution\n"
        "  /debug/pprof/cmdline                                      process argv\n");
  });
  server.handle_query(
      "/debug/pprof/profile", "text/plain", [](const std::string& query) -> std::string {
        auto& profiler = telemetry::Profiler::instance();
        const long seconds = std::clamp(query_long(query, "seconds", 5), 1L, 60L);
        const int hz = static_cast<int>(std::clamp(query_long(query, "hz", 99), 1L, 1000L));
        const bool speedscope = query_param(query, "format") == "speedscope";
        telemetry::ProfileReport report;
        if (profiler.running()) {
          // A capture is already in flight (e.g. --profile): report its
          // progress instead of fighting over the SIGPROF timers.
          report = profiler.snapshot();
        } else {
          const Status st = profiler.start(hz);
          if (!st.is_ok()) return "profile unavailable: " + st.to_string() + '\n';
          std::this_thread::sleep_for(std::chrono::seconds(seconds));
          report = profiler.stop();
        }
        if (speedscope) return report.speedscope_json("live-profile");
        std::string out = report.folded_text();
        if (out.empty()) out = "(no samples: process idle during capture window)\n";
        return out;
      });
  server.handle("/debug/pprof/heap", "text/plain", [] {
    const telemetry::AllocReport report = telemetry::Profiler::instance().alloc_report();
    std::string out = report.folded_text();
    if (out.empty()) {
      out = "(no allocation samples: enable with --profile or Profiler::set_attribution)\n";
    }
    return out;
  });
  server.handle("/debug/pprof/cmdline", "text/plain", [] {
    std::string out;
    if (std::FILE* f = std::fopen("/proc/self/cmdline", "r")) {
      char buf[4096];
      const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
      std::fclose(f);
      out.assign(buf, n);
      for (char& c : out) {
        if (c == '\0') c = ' ';
      }
    }
    out += '\n';
    return out;
  });
}

}  // namespace mar::net
