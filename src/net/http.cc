#include "net/http.h"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/log.h"

namespace mar::net {
namespace {

constexpr int kAcceptPollMs = 100;   // stop-flag check cadence
constexpr int kRequestTimeoutMs = 2000;
constexpr std::size_t kMaxRequestBytes = 8192;

std::string make_response(int code, const char* reason, const std::string& content_type,
                          const std::string& body) {
  std::ostringstream out;
  out << "HTTP/1.1 " << code << ' ' << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // a signal mid-write is not an abort
    if (n <= 0) return;  // client went away (EPIPE/ECONNRESET): stop quietly
    off += static_cast<std::size_t>(n);
  }
}

enum class ReadHeadResult { kOk, kClosedOrTimeout, kTooLarge };

// Read until the end of the request head ("\r\n\r\n"), timeout, or the
// size cap. A scrape request fits in one segment, but don't rely on it.
ReadHeadResult read_request_head(int fd, std::string* head) {
  char buf[2048];
  while (true) {
    if (head->find("\r\n\r\n") != std::string::npos ||
        head->find("\n\n") != std::string::npos) {
      return ReadHeadResult::kOk;
    }
    if (head->size() >= kMaxRequestBytes) return ReadHeadResult::kTooLarge;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, kRequestTimeoutMs) <= 0) return ReadHeadResult::kClosedOrTimeout;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return ReadHeadResult::kClosedOrTimeout;
    head->append(buf, static_cast<std::size_t>(n));
  }
}

// "GET /metrics HTTP/1.1" -> method, path (query string stripped).
bool parse_request_line(const std::string& head, std::string* method, std::string* path) {
  const std::size_t eol = head.find_first_of("\r\n");
  const std::string line = head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  *method = line.substr(0, sp1);
  *path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path->find('?');
  if (query != std::string::npos) path->resize(query);
  return !method->empty() && !path->empty() && path->front() == '/' &&
         line.compare(sp2 + 1, 5, "HTTP/") == 0;
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, std::string content_type, Handler fn) {
  routes_.push_back(Route{std::move(path), std::move(content_type), std::move(fn)});
}

Status HttpServer::start(std::uint16_t port) {
  if (running_.load()) return Status(StatusCode::kInternal, "already running");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status(StatusCode::kInternal, std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const Status err(StatusCode::kUnavailable, std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return err;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  stop_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { serve_loop(); });
  return Status::ok();
}

void HttpServer::stop() {
  if (!running_.load()) return;
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false);
}

void HttpServer::serve_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  std::string head;
  switch (read_request_head(fd, &head)) {
    case ReadHeadResult::kOk:
      break;
    case ReadHeadResult::kClosedOrTimeout:
      return;  // slow or vanished client: drop silently
    case ReadHeadResult::kTooLarge:
      send_all(fd, make_response(431, "Request Header Fields Too Large", "text/plain",
                                 "request head exceeds 8 KiB\n"));
      return;
  }

  std::string method, path;
  if (!parse_request_line(head, &method, &path)) {
    send_all(fd, make_response(400, "Bad Request", "text/plain", "bad request\n"));
    return;
  }
  if (method != "GET") {
    send_all(fd, make_response(405, "Method Not Allowed", "text/plain",
                               "only GET is supported\n"));
    return;
  }
  for (const Route& route : routes_) {
    if (route.path == path) {
      send_all(fd, make_response(200, "OK", route.content_type, route.fn()));
      return;
    }
  }
  send_all(fd, make_response(404, "Not Found", "text/plain", "not found: " + path + "\n"));
}

void serve_metrics(HttpServer& server, telemetry::MetricRegistry& registry,
                   std::function<std::string()> statusz_extra) {
  server.handle("/metrics", "text/plain; version=0.0.4; charset=utf-8",
                [&registry] { return registry.prometheus_text(); });
  server.handle("/healthz", "text/plain", [] { return std::string("ok\n"); });
  server.handle("/statusz", "text/plain",
                [&registry, extra = std::move(statusz_extra)] {
                  std::string body = registry.statusz_text();
                  if (extra) {
                    body += '\n';
                    body += extra();
                  }
                  return body;
                });
}

}  // namespace mar::net
