#include "net/epoll_loop.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace mar::net {

EpollLoop::~EpollLoop() { close(); }

Status EpollLoop::init() {
  close();
  epfd_ = ::epoll_create1(0);
  if (epfd_ < 0) return {StatusCode::kInternal, std::strerror(errno)};
  return Status::ok();
}

void EpollLoop::close() {
  if (epfd_ >= 0) {
    ::close(epfd_);
    epfd_ = -1;
  }
  handlers_.clear();
  timers_.clear();
  cancelled_.clear();
}

Status EpollLoop::add(int fd, Handler on_readable) {
  if (epfd_ < 0) return {StatusCode::kUnavailable, "loop not initialized"};
  if (fd < 0) return {StatusCode::kInvalidArgument, "bad fd"};
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    return {StatusCode::kInternal, std::strerror(errno)};
  }
  handlers_[fd] = std::move(on_readable);
  return Status::ok();
}

Status EpollLoop::remove(int fd) {
  if (epfd_ < 0) return {StatusCode::kUnavailable, "loop not initialized"};
  if (handlers_.erase(fd) == 0) return {StatusCode::kNotFound, "fd not watched"};
  if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) < 0) {
    return {StatusCode::kInternal, std::strerror(errno)};
  }
  return Status::ok();
}

std::uint64_t EpollLoop::schedule_after(std::chrono::milliseconds delay, Handler fn,
                                        std::chrono::milliseconds period) {
  Timer t;
  t.deadline = Clock::now() + delay;
  t.period = period;
  t.id = next_timer_id_++;
  t.fn = std::move(fn);
  const std::uint64_t id = t.id;
  timers_.push_back(std::move(t));
  std::push_heap(timers_.begin(), timers_.end(), timer_later);
  return id;
}

void EpollLoop::cancel(std::uint64_t timer_id) { cancelled_.push_back(timer_id); }

void EpollLoop::fire_due_timers(Clock::time_point now) {
  while (!timers_.empty() && timers_.front().deadline <= now) {
    std::pop_heap(timers_.begin(), timers_.end(), timer_later);
    Timer t = std::move(timers_.back());
    timers_.pop_back();
    const auto cancelled_it = std::find(cancelled_.begin(), cancelled_.end(), t.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    ++timers_fired_;
    t.fn();
    if (t.period.count() > 0) {
      t.deadline = now + t.period;
      timers_.push_back(std::move(t));
      std::push_heap(timers_.begin(), timers_.end(), timer_later);
    }
  }
}

int EpollLoop::run_once(int max_wait_ms) {
  if (epfd_ < 0) return -1;
  const auto now = Clock::now();
  int wait_ms = max_wait_ms;
  if (!timers_.empty()) {
    const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
        timers_.front().deadline - now);
    const int until_ms = static_cast<int>(std::max<std::int64_t>(0, until.count()));
    wait_ms = max_wait_ms < 0 ? until_ms : std::min(max_wait_ms, until_ms);
  }

  epoll_event events[64];
  int n;
  do {
    n = ::epoll_wait(epfd_, events, 64, wait_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return -1;

  int fired = 0;
  for (int i = 0; i < n; ++i) {
    // Re-lookup per event: a handler may remove other fds mid-batch.
    const auto it = handlers_.find(events[i].data.fd);
    if (it == handlers_.end()) continue;
    ++events_dispatched_;
    ++fired;
    it->second();
  }
  const auto after = Clock::now();
  const std::uint64_t timers_before = timers_fired_;
  fire_due_timers(after);
  fired += static_cast<int>(timers_fired_ - timers_before);
  return fired;
}

void EpollLoop::run(const std::function<bool()>& keep_going, int max_wait_ms) {
  while (keep_going()) {
    if (run_once(max_wait_ms) < 0) return;
  }
}

}  // namespace mar::net
