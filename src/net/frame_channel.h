// FrameChannel: FramePacket transport over a real UDP socket —
// serialize, fragment, send; receive, reassemble, parse. This is the
// live-mode counterpart of the simulator's SimNetwork::send.
#pragma once

#include <optional>
#include <utility>

#include "common/status.h"
#include "net/fragment.h"
#include "net/udp.h"
#include "wire/message.h"

namespace mar::net {

class FrameChannel {
 public:
  // Bind to `port` (0 = ephemeral).
  Status open(std::uint16_t port = 0) { return socket_.open(port); }
  [[nodiscard]] Result<SockAddr> local_addr() const { return socket_.local_addr(); }
  [[nodiscard]] bool is_open() const { return socket_.is_open(); }

  // Serialize + fragment + transmit. Returns the first send error, if any.
  Status send(const wire::FramePacket& pkt, const SockAddr& dst);

  struct Received {
    wire::FramePacket packet;
    SockAddr from;
  };
  // Wait up to `timeout_ms` and return the next complete packet, if
  // one finishes reassembly. Partial messages are GC'd on the way.
  std::optional<Received> poll(int timeout_ms);

  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_received() const { return received_; }
  [[nodiscard]] std::uint64_t reassembly_expired() const { return reassembler_.expired(); }
  // Messages that failed mid-transmit (some fragments unsent) and
  // reassembled messages that failed to parse — both also exported as
  // mar_net_*_errors_total registry counters.
  [[nodiscard]] std::uint64_t send_errors() const { return send_errors_; }
  [[nodiscard]] std::uint64_t parse_errors() const { return parse_errors_; }
  [[nodiscard]] std::uint64_t socket_recv_errors() const { return socket_.recv_errors(); }

 private:
  UdpSocket socket_;
  Reassembler reassembler_;
  std::uint32_t next_message_id_ = 1;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t send_errors_ = 0;
  std::uint64_t parse_errors_ = 0;
};

}  // namespace mar::net
