// FrameChannel: FramePacket transport over a real UDP socket —
// serialize, fragment, send; receive, reassemble, parse. This is the
// live-mode counterpart of the simulator's SimNetwork::send.
//
// Beyond the original fire-and-forget behavior, a channel can enable
// the production recovery tiers (see net/fragment.h and net/rtx.h):
//
//   * fec_group = k: one XOR-parity datagram rides along per k data
//     fragments, so a single loss per group repairs locally;
//   * enable_rtx: the receiving side NACKs still-missing fragments
//     (exponential backoff, bounded rounds) and the sending side
//     retains fragments to answer from; completed messages are ACKed
//     so the sender can release buffers early.
//
// Both directions run over the same socket; control datagrams (NACK /
// ACK) share it with fragments, disambiguated by the first byte.
//
// For deterministic loss experiments (bench/lossy_link, tests) the
// channel has a transmit-side loss harness: a seeded Bernoulli drop of
// outgoing data/parity datagrams — including retransmissions — while
// control datagrams pass untouched so recovery counters stay exactly
// reproducible. Real channels obviously lose control traffic too; the
// backoff schedule already covers that case (a lost NACK is just a
// louder round later).
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/rng.h"
#include "common/status.h"
#include "net/fragment.h"
#include "net/rtx.h"
#include "net/udp.h"
#include "wire/message.h"

namespace mar::telemetry {
class Gauge;
}

namespace mar::net {

struct ChannelOptions {
  // Receiver-driven NACK retransmission (and completion ACKs).
  bool enable_rtx = false;
  RtxConfig rtx;
  // XOR-parity FEC group size (data fragments per parity); 0 = off.
  int fec_group = 0;
  // Reassembly bounds.
  std::chrono::milliseconds reassembly_timeout{500};
  std::size_t max_pending = kDefaultMaxPending;
  // Deterministic transmit-loss harness (tests/bench only).
  double tx_loss_rate = 0.0;
  std::uint64_t tx_loss_seed = 1;
};

class FrameChannel {
 public:
  FrameChannel() : FrameChannel(ChannelOptions{}) {}
  explicit FrameChannel(ChannelOptions opts)
      : opts_(opts),
        reassembler_(opts.reassembly_timeout, opts.max_pending),
        rtx_(opts.rtx),
        loss_rng_(opts.tx_loss_seed),
        next_message_id_(allocate_id_space() + 1) {}

  // Bind to `port` (0 = ephemeral).
  Status open(std::uint16_t port = 0) { return socket_.open(port); }
  [[nodiscard]] Result<SockAddr> local_addr() const { return socket_.local_addr(); }
  [[nodiscard]] bool is_open() const { return socket_.is_open(); }
  // Raw fd for event-loop registration (EpollLoop::add). Handlers
  // should drain with poll(0) until it returns nothing.
  [[nodiscard]] int fd() const { return socket_.fd(); }
  [[nodiscard]] const ChannelOptions& options() const { return opts_; }

  // Serialize + fragment (+ parity) + transmit (+ retain for rtx).
  // Returns the first send error, if any.
  Status send(const wire::FramePacket& pkt, const SockAddr& dst);

  struct Received {
    wire::FramePacket packet;
    SockAddr from;
    std::uint32_t fec_repairs = 0;  // repairs that went into this message
  };
  // Wait up to `timeout_ms` and return the next complete packet, if
  // one finishes reassembly. Control datagrams are answered, NACK
  // deadlines checked, and partial messages GC'd on the way.
  std::optional<Received> poll(int timeout_ms);

  // Housekeeping only (NACK backoff, retain expiry, reassembly GC) —
  // what poll() does after draining, for timer-driven epoll callers.
  void tick();

  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_received() const { return received_; }
  [[nodiscard]] std::uint64_t reassembly_expired() const { return reassembler_.expired(); }
  [[nodiscard]] std::uint64_t reassembly_evicted() const { return reassembler_.evicted(); }
  // Messages that failed mid-transmit (some fragments unsent) and
  // reassembled messages that failed to parse — both also exported as
  // mar_net_*_errors_total registry counters.
  [[nodiscard]] std::uint64_t send_errors() const { return send_errors_; }
  [[nodiscard]] std::uint64_t parse_errors() const { return parse_errors_; }
  [[nodiscard]] std::uint64_t socket_recv_errors() const { return socket_.recv_errors(); }

  // --- recovery statistics (also mar_net_* registry counters) --------
  // Data fragments sent first-shot vs resent in answer to NACKs.
  [[nodiscard]] std::uint64_t fragments_sent() const { return fragments_sent_; }
  [[nodiscard]] std::uint64_t rtx_fragments_sent() const { return rtx_fragments_sent_; }
  [[nodiscard]] std::uint64_t nacks_sent() const { return rtx_.nacks_sent(); }
  [[nodiscard]] std::uint64_t fec_repairs() const { return reassembler_.fec_repairs(); }
  // Messages completed where FEC repaired a loss and no NACK was ever
  // needed — recovery without a round trip.
  [[nodiscard]] std::uint64_t frames_fec_only() const { return frames_fec_only_; }
  // Incoming frames given up for good: rtx budget exhausted, GC'd
  // while incomplete, or evicted by the pending cap.
  [[nodiscard]] std::uint64_t frames_unrecoverable() const { return frames_unrecoverable_; }
  // Datagrams the loss harness swallowed.
  [[nodiscard]] std::uint64_t harness_dropped() const { return harness_dropped_; }
  // Receiver-observed fragment-loss estimate, also exported as the
  // mar_net_receiver_loss_ratio{channel=<local port>} gauge: fragments
  // this side had to recover (FEC repairs + fragments reported missing
  // when a message first went to NACK) over the expected fragments of
  // all settled incoming messages. An estimate — a late reordered
  // fragment counts as "lost" once its message NACKed — but it tracks
  // the wire loss rate closely enough to validate a lossy-link setup.
  [[nodiscard]] double receiver_loss_ratio() const;

 private:
  // Transmit one data/parity datagram through the loss harness.
  bool harness_send(const std::vector<std::uint8_t>& datagram, const SockAddr& dst,
                    Status* first_error);
  void handle_control(const UdpSocket::Datagram& datagram);
  void housekeeping();
  void publish_receiver_loss();
  // Message ids are only unique per sender, but one receiving socket
  // reassembles traffic from MANY senders (N clients -> one stage).
  // Give each channel in the process a disjoint 2^20-id block so ids
  // never collide inside a shared Reassembler.
  static std::uint32_t allocate_id_space();

  ChannelOptions opts_;
  UdpSocket socket_;
  Reassembler reassembler_;
  RtxController rtx_;
  Rng loss_rng_;
  // Where each partially received message came from (NACK target).
  std::unordered_map<std::uint32_t, SockAddr> origin_;
  std::uint32_t next_message_id_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t send_errors_ = 0;
  std::uint64_t parse_errors_ = 0;
  std::uint64_t fragments_sent_ = 0;
  std::uint64_t rtx_fragments_sent_ = 0;
  std::uint64_t frames_fec_only_ = 0;
  std::uint64_t frames_unrecoverable_ = 0;
  std::uint64_t harness_dropped_ = 0;
  std::uint64_t counted_expired_ = 0;  // expiry deltas already counted
  // Receiver loss accounting: message ids whose missing fragments were
  // already added to fragments_lost_observed_ (first NACK only).
  std::unordered_set<std::uint32_t> loss_counted_;
  std::uint64_t fragments_lost_observed_ = 0;
  telemetry::Gauge* loss_gauge_ = nullptr;  // created once the port is known
};

}  // namespace mar::net
