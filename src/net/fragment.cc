#include "net/fragment.h"

#include <algorithm>

#include "common/bytes.h"

namespace mar::net {
namespace {
constexpr std::uint8_t kFragMagic = 0xF7;
}

std::vector<std::vector<std::uint8_t>> fragment_message(std::span<const std::uint8_t> message,
                                                        std::uint32_t message_id) {
  std::vector<std::vector<std::uint8_t>> out;
  const std::size_t count =
      message.empty() ? 1 : (message.size() + kMaxFragmentPayload - 1) / kMaxFragmentPayload;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t offset = i * kMaxFragmentPayload;
    const std::size_t len = std::min(kMaxFragmentPayload, message.size() - offset);
    ByteWriter w(kFragmentHeaderBytes + len);
    w.put_u8(kFragMagic);
    w.put_u32(message_id);
    w.put_u16(static_cast<std::uint16_t>(i));
    w.put_u16(static_cast<std::uint16_t>(count));
    w.put_u32(static_cast<std::uint32_t>(len));
    w.put_bytes(message.subspan(offset, len));
    out.push_back(std::move(w).take());
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> Reassembler::add(
    std::span<const std::uint8_t> datagram) {
  ByteReader r(datagram);
  if (r.get_u8() != kFragMagic) return std::nullopt;
  const std::uint32_t id = r.get_u32();
  const std::uint16_t index = r.get_u16();
  const std::uint16_t count = r.get_u16();
  const std::uint32_t len = r.get_u32();
  if (!r.ok() || count == 0 || index >= count || len != r.remaining()) return std::nullopt;

  Partial& p = partial_[id];
  if (p.fragments.empty()) {
    p.fragments.resize(count);
    p.first_seen = std::chrono::steady_clock::now();
  }
  if (p.fragments.size() != count) {
    partial_.erase(id);  // inconsistent metadata; drop the message
    return std::nullopt;
  }
  if (p.fragments[index].empty()) {
    p.fragments[index] = r.get_bytes(len);
    ++p.received;
  }
  if (p.received < count) return std::nullopt;

  std::vector<std::uint8_t> message;
  for (const auto& frag : p.fragments) {
    message.insert(message.end(), frag.begin(), frag.end());
  }
  partial_.erase(id);
  return message;
}

void Reassembler::garbage_collect() {
  const auto now = std::chrono::steady_clock::now();
  for (auto it = partial_.begin(); it != partial_.end();) {
    if (now - it->second.first_seen > timeout_) {
      it = partial_.erase(it);
      ++expired_;
    } else {
      ++it;
    }
  }
}

}  // namespace mar::net
