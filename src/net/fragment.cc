#include "net/fragment.h"

#include <algorithm>

#include "common/bytes.h"

namespace mar::net {
namespace {
constexpr std::uint8_t kFragMagic = 0xF7;
constexpr std::uint8_t kParityMagic = 0xF8;

std::size_t fragment_count(std::size_t message_bytes) {
  return message_bytes == 0 ? 1
                            : (message_bytes + kMaxFragmentPayload - 1) / kMaxFragmentPayload;
}

// Data-fragment payload length at `index` of a `total_bytes` message.
std::size_t fragment_len(std::size_t total_bytes, std::size_t index, std::size_t count) {
  if (index + 1 < count) return kMaxFragmentPayload;
  return total_bytes - index * kMaxFragmentPayload;
}

}  // namespace

std::vector<std::vector<std::uint8_t>> fragment_message(std::span<const std::uint8_t> message,
                                                        std::uint32_t message_id) {
  std::vector<std::vector<std::uint8_t>> out;
  const std::size_t count = fragment_count(message.size());
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t offset = i * kMaxFragmentPayload;
    const std::size_t len = std::min(kMaxFragmentPayload, message.size() - offset);
    ByteWriter w(kFragmentHeaderBytes + len);
    w.put_u8(kFragMagic);
    w.put_u32(message_id);
    w.put_u16(static_cast<std::uint16_t>(i));
    w.put_u16(static_cast<std::uint16_t>(count));
    w.put_u32(static_cast<std::uint32_t>(len));
    w.put_bytes(message.subspan(offset, len));
    out.push_back(std::move(w).take());
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> fec_parity_fragments(
    std::span<const std::uint8_t> message, std::uint32_t message_id, int group_size) {
  std::vector<std::vector<std::uint8_t>> out;
  if (group_size <= 0) return out;
  const std::size_t k = static_cast<std::size_t>(std::min(group_size, 255));
  const std::size_t count = fragment_count(message.size());
  const std::size_t groups = (count + k - 1) / k;
  out.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t first = g * k;
    const std::size_t last = std::min(first + k, count);
    // Parity spans the group's longest fragment; shorter fragments XOR
    // in as if zero-padded.
    std::size_t parity_len = 0;
    for (std::size_t i = first; i < last; ++i) {
      parity_len = std::max(parity_len, fragment_len(message.size(), i, count));
    }
    std::vector<std::uint8_t> parity(parity_len, 0);
    for (std::size_t i = first; i < last; ++i) {
      const std::size_t offset = i * kMaxFragmentPayload;
      const std::size_t len = fragment_len(message.size(), i, count);
      for (std::size_t b = 0; b < len; ++b) parity[b] ^= message[offset + b];
    }
    ByteWriter w(kParityHeaderBytes + parity_len);
    w.put_u8(kParityMagic);
    w.put_u32(message_id);
    w.put_u16(static_cast<std::uint16_t>(g));
    w.put_u16(static_cast<std::uint16_t>(count));
    w.put_u8(static_cast<std::uint8_t>(k));
    w.put_u32(static_cast<std::uint32_t>(message.size()));
    w.put_u32(static_cast<std::uint32_t>(parity_len));
    w.put_bytes(parity);
    out.push_back(std::move(w).take());
  }
  return out;
}

Reassembler::Partial* Reassembler::find_or_create(std::uint32_t id, std::uint16_t count,
                                                  std::chrono::steady_clock::time_point now) {
  auto it = partial_.find(id);
  if (it == partial_.end()) {
    // A straggler for a message already delivered (or given up on):
    // duplicate retransmission that crossed the ACK, or a late parity
    // datagram. Starting a fresh partial here would re-deliver the
    // message — drop it instead.
    if (done_.count(id) != 0) return nullptr;
    if (partial_.size() >= max_pending_) {
      // Cap the reassembly window: evict the stalest partial so memory
      // stays bounded under sustained partial loss.
      auto stalest = partial_.begin();
      for (auto cand = partial_.begin(); cand != partial_.end(); ++cand) {
        if (cand->second.last_activity < stalest->second.last_activity) stalest = cand;
      }
      fragments_expected_done_ += stalest->second.fragments.size();
      partial_.erase(stalest);
      ++evicted_;
    }
    it = partial_.emplace(id, Partial{}).first;
    it->second.fragments.resize(count);
    it->second.first_seen = now;
  }
  Partial& p = it->second;
  if (p.fragments.size() != count) {
    partial_.erase(it);  // inconsistent metadata; drop the message
    return nullptr;
  }
  p.last_activity = now;
  return &p;
}

std::uint32_t Reassembler::try_repair_group(Partial& p, std::uint16_t group) {
  if (p.fec_k == 0) return 0;
  const auto parity_it = p.parity.find(group);
  if (parity_it == p.parity.end()) return 0;
  const std::size_t count = p.fragments.size();
  const std::size_t first = static_cast<std::size_t>(group) * p.fec_k;
  const std::size_t last = std::min(first + p.fec_k, count);
  std::size_t missing = count;  // sentinel: none
  for (std::size_t i = first; i < last; ++i) {
    if (!p.fragments[i].empty() || fragment_len(p.total_bytes, i, count) == 0) continue;
    if (missing != count) return 0;  // two+ losses: parity cannot help
    missing = i;
  }
  if (missing == count) return 0;
  const std::size_t len = fragment_len(p.total_bytes, missing, count);
  if (len > parity_it->second.size()) return 0;  // malformed parity
  std::vector<std::uint8_t> rebuilt(parity_it->second.begin(),
                                    parity_it->second.begin() + static_cast<std::ptrdiff_t>(len));
  for (std::size_t i = first; i < last; ++i) {
    if (i == missing) continue;
    const auto& frag = p.fragments[i];
    for (std::size_t b = 0; b < std::min(len, frag.size()); ++b) rebuilt[b] ^= frag[b];
  }
  p.fragments[missing] = std::move(rebuilt);
  ++p.received;
  ++p.repairs;
  ++fec_repairs_;
  return 1;
}

Reassembler::AddResult Reassembler::complete(std::uint32_t id, Partial& p) {
  AddResult r;
  r.id = id;
  r.accepted = true;
  r.message_repairs = p.repairs;
  std::vector<std::uint8_t> message;
  for (const auto& frag : p.fragments) {
    message.insert(message.end(), frag.begin(), frag.end());
  }
  fragments_expected_done_ += p.fragments.size();
  partial_.erase(id);
  remember_done(id);
  r.message = std::move(message);
  return r;
}

void Reassembler::remember_done(std::uint32_t id) {
  if (!done_.insert(id).second) return;
  done_order_.push_back(id);
  while (done_order_.size() > kCompletedMemory) {
    done_.erase(done_order_.front());
    done_order_.pop_front();
  }
}

Reassembler::AddResult Reassembler::accept_data(std::span<const std::uint8_t> datagram) {
  AddResult result;
  ByteReader r(datagram);
  r.get_u8();  // magic, already checked
  const std::uint32_t id = r.get_u32();
  const std::uint16_t index = r.get_u16();
  const std::uint16_t count = r.get_u16();
  const std::uint32_t len = r.get_u32();
  if (!r.ok() || count == 0 || index >= count || len != r.remaining()) return result;

  Partial* p = find_or_create(id, count, std::chrono::steady_clock::now());
  if (p == nullptr) return result;
  result.id = id;
  result.accepted = true;
  const bool was_empty = p->fragments[index].empty();
  // An empty payload is only valid for the single fragment of an empty
  // message; receive it as "present" via the received count.
  if (was_empty && (len > 0 || (count == 1 && p->received == 0))) {
    p->fragments[index] = r.get_bytes(len);
    ++p->received;
    // This arrival may make another fragment of its group repairable
    // (k-2 present + parity -> k-1 present + parity).
    if (p->fec_k > 0) {
      result.repaired = try_repair_group(*p, static_cast<std::uint16_t>(index / p->fec_k));
    }
  }
  if (p->received < count) return result;
  auto done = complete(id, *p);
  done.repaired = result.repaired;
  return done;
}

Reassembler::AddResult Reassembler::accept_parity(std::span<const std::uint8_t> datagram) {
  AddResult result;
  ByteReader r(datagram);
  r.get_u8();  // magic
  const std::uint32_t id = r.get_u32();
  const std::uint16_t group = r.get_u16();
  const std::uint16_t count = r.get_u16();
  const std::uint8_t k = r.get_u8();
  const std::uint32_t total_bytes = r.get_u32();
  const std::uint32_t len = r.get_u32();
  if (!r.ok() || count == 0 || k == 0 || len != r.remaining()) return result;
  // The header's total size must agree with its fragment count.
  if (fragment_count(total_bytes) != count) return result;
  if (static_cast<std::size_t>(group) * k >= count) return result;

  Partial* p = find_or_create(id, count, std::chrono::steady_clock::now());
  if (p == nullptr) return result;
  result.id = id;
  result.accepted = true;
  if (p->fec_k == 0) {
    p->fec_k = k;
    p->total_bytes = total_bytes;
  } else if (p->fec_k != k || p->total_bytes != total_bytes) {
    return result;  // conflicting parity metadata: ignore the datagram
  }
  p->parity.emplace(group, r.get_bytes(len));
  result.repaired = try_repair_group(*p, group);
  if (p->received < p->fragments.size()) return result;
  auto done = complete(id, *p);
  done.repaired = result.repaired;
  return done;
}

Reassembler::AddResult Reassembler::add_ex(std::span<const std::uint8_t> datagram) {
  if (datagram.size() < kFragmentHeaderBytes) return {};
  switch (datagram[0]) {
    case kFragMagic:
      return accept_data(datagram);
    case kParityMagic:
      return accept_parity(datagram);
    default:
      return {};
  }
}

void Reassembler::garbage_collect() {
  const auto now = std::chrono::steady_clock::now();
  for (auto it = partial_.begin(); it != partial_.end();) {
    if (now - it->second.last_activity > timeout_) {
      fragments_expected_done_ += it->second.fragments.size();
      it = partial_.erase(it);
      ++expired_;
    } else {
      ++it;
    }
  }
}

bool Reassembler::abandon(std::uint32_t id) {
  remember_done(id);  // late fragments must not restart the NACK cycle
  const auto it = partial_.find(id);
  if (it == partial_.end()) return false;
  fragments_expected_done_ += it->second.fragments.size();
  partial_.erase(it);
  return true;
}

std::vector<Reassembler::PendingMessage> Reassembler::pending_messages() const {
  std::vector<PendingMessage> out;
  out.reserve(partial_.size());
  for (const auto& [id, p] : partial_) {
    out.push_back(PendingMessage{id, static_cast<std::uint16_t>(p.fragments.size()),
                                 p.received, p.last_activity});
  }
  return out;
}

std::vector<std::uint16_t> Reassembler::missing_fragments(std::uint32_t id) const {
  std::vector<std::uint16_t> out;
  const auto it = partial_.find(id);
  if (it == partial_.end()) return out;
  const Partial& p = it->second;
  for (std::size_t i = 0; i < p.fragments.size(); ++i) {
    if (p.fragments[i].empty()) out.push_back(static_cast<std::uint16_t>(i));
  }
  // The single fragment of an empty message is "present but empty".
  if (p.fragments.size() == 1 && p.received == 1) out.clear();
  return out;
}

}  // namespace mar::net
