// Sender-side adaptive frame sizing under loss.
//
// CloudAR-style fidelity adaptation: the sender watches its own
// transport outcomes (fraction of a frame's fragments that needed
// retransmission, frames that never completed) through an EWMA loss
// estimate, and steps a discrete quality level down when sustained
// loss crosses a threshold — smaller frames mean fewer fragments,
// which under per-fragment loss means a superlinearly better chance
// the frame survives (the same math as sim::LinkModel::survives).
// Recovery is deliberately slower than decay: the level steps back up
// only after `hold_frames` consecutive clean frames.
//
// Pure logic, no clock, no transport dependency: the live pipeline
// feeds it FrameChannel outcomes; a simulated client could feed it
// LinkModel::deliver outcomes — one loss-recovery story for both
// substrates.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mar::net {

struct AdaptiveConfig {
  int min_level = 0;
  int max_level = 3;
  int initial_level = 3;
  // EWMA of per-frame fragment-loss fraction; >down steps the level
  // down, <up (held for hold_frames frames) steps it back up.
  double ewma_alpha = 0.25;
  double down_threshold = 0.08;
  double up_threshold = 0.02;
  int hold_frames = 16;
  // Frames between consecutive down-steps, so one burst cannot slam
  // the quality to the floor before the smaller frames take effect.
  int cooldown_frames = 4;
};

class AdaptiveQuality {
 public:
  explicit AdaptiveQuality(AdaptiveConfig cfg = {});

  // Report one frame's transport outcome. `fragments_sent` counts the
  // first transmission only; `fragments_retransmitted` everything the
  // NACK path resent; `delivered` false means the frame was abandoned.
  void on_frame(std::size_t fragments_sent, std::size_t fragments_retransmitted,
                bool delivered);

  [[nodiscard]] int level() const { return level_; }
  // Linear payload scale for the current level in (0, 1]:
  // max_level -> 1.0, min_level -> roughly 0.4.
  [[nodiscard]] double scale() const;
  [[nodiscard]] double loss_estimate() const { return ewma_; }
  [[nodiscard]] std::uint64_t downgrades() const { return downgrades_; }
  [[nodiscard]] std::uint64_t upgrades() const { return upgrades_; }
  [[nodiscard]] std::uint64_t frames_seen() const { return frames_; }

 private:
  AdaptiveConfig cfg_;
  int level_;
  double ewma_ = 0.0;
  int clean_streak_ = 0;
  int since_downgrade_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t downgrades_ = 0;
  std::uint64_t upgrades_ = 0;
};

}  // namespace mar::net
