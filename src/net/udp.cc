#include "net/udp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mar::net {
namespace {

sockaddr_in to_sockaddr(const SockAddr& a) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(a.ip);
  sa.sin_port = htons(a.port);
  return sa;
}

SockAddr from_sockaddr(const sockaddr_in& sa) {
  return SockAddr{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

}  // namespace

std::string SockAddr::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u", (ip >> 24) & 0xFF, (ip >> 16) & 0xFF,
                (ip >> 8) & 0xFF, ip & 0xFF, port);
  return buf;
}

UdpSocket::~UdpSocket() { close(); }

UdpSocket::UdpSocket(UdpSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status UdpSocket::open(std::uint16_t bind_port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return {StatusCode::kInternal, std::strerror(errno)};

  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    const Status s{StatusCode::kInternal, std::strerror(errno)};
    close();
    return s;
  }
  // Frames burst in ~60 KB fragments; give the kernel room.
  const int rcvbuf = 4 * 1024 * 1024;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));

  sockaddr_in addr = to_sockaddr(SockAddr::loopback(bind_port));
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status s{StatusCode::kUnavailable, std::strerror(errno)};
    close();
    return s;
  }
  return Status::ok();
}

void UdpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<SockAddr> UdpSocket::local_addr() const {
  if (fd_ < 0) return Status{StatusCode::kUnavailable, "socket not open"};
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) < 0) {
    return Status{StatusCode::kInternal, std::strerror(errno)};
  }
  SockAddr out = from_sockaddr(sa);
  if (out.ip == 0) out.ip = 0x7F000001u;  // INADDR_ANY binds report 0.0.0.0
  return out;
}

Result<std::size_t> UdpSocket::send_to(std::span<const std::uint8_t> data,
                                       const SockAddr& dst) {
  if (fd_ < 0) return Status{StatusCode::kUnavailable, "socket not open"};
  const sockaddr_in sa = to_sockaddr(dst);
  const ssize_t n = ::sendto(fd_, data.data(), data.size(), 0,
                             reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  if (n < 0) {
    ++send_errors_;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status{StatusCode::kResourceExhausted, "send buffer full"};
    }
    return Status{StatusCode::kInternal, std::strerror(errno)};
  }
  return static_cast<std::size_t>(n);
}

std::optional<UdpSocket::Datagram> UdpSocket::receive() {
  if (fd_ < 0) return std::nullopt;
  Datagram d;
  d.data.resize(65536);
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  const ssize_t n = ::recvfrom(fd_, d.data.data(), d.data.size(), 0,
                               reinterpret_cast<sockaddr*>(&sa), &len);
  if (n < 0) {
    if (errno != EAGAIN && errno != EWOULDBLOCK) ++recv_errors_;
    return std::nullopt;
  }
  d.data.resize(static_cast<std::size_t>(n));
  d.from = from_sockaddr(sa);
  return d;
}

bool UdpSocket::wait_readable(int timeout_ms) const {
  if (fd_ < 0) return false;
  pollfd pfd{fd_, POLLIN, 0};
  return ::poll(&pfd, 1, timeout_ms) > 0 && (pfd.revents & POLLIN) != 0;
}

}  // namespace mar::net
