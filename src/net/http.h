// Minimal from-scratch HTTP/1.1 server for the live metrics plane.
//
// One blocking accept thread, one request per connection (keep-alive is
// deliberately off: a scraper opens, reads, closes), GET-only. Handlers
// are registered per path before start() and produce the full response
// body on each request; everything else is a 404. This is not a general
// web server — it exists so `curl localhost:<port>/metrics` works
// against any live pipeline process with zero dependencies.
//
// serve_metrics() wires the standard trio onto a server:
//   /metrics  Prometheus exposition from the MetricRegistry
//   /healthz  "ok" once the process is serving
//   /statusz  human-readable snapshot (registry + optional extra text)
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "telemetry/registry.h"

namespace mar::net {

class HttpServer {
 public:
  using Handler = std::function<std::string()>;
  // Query-aware variant: receives the raw query string (the part after
  // '?', possibly empty). Parse it with net::query_param().
  using HandlerEx = std::function<std::string(const std::string& query)>;

  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Register a GET handler producing the response body. Call before
  // start(); `content_type` goes out verbatim in the response header.
  void handle(std::string path, std::string content_type, Handler fn);
  // Same, for handlers that read the query string (/debug/pprof/profile
  // uses seconds=/hz=). The handler runs on the single accept thread, so
  // a long-running handler blocks other scrapes for its duration.
  void handle_query(std::string path, std::string content_type, HandlerEx fn);

  // Bind (0 = ephemeral), listen, and launch the accept thread.
  Status start(std::uint16_t port);
  // Idempotent; joins the accept thread.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(std::memory_order_relaxed); }
  // Bound port after start() (resolves an ephemeral request).
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  struct Route {
    std::string path;
    std::string content_type;
    HandlerEx fn;  // plain Handlers are wrapped, ignoring the query
  };

  void serve_loop();
  void handle_connection(int fd);

  std::vector<Route> routes_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

// Register /metrics, /healthz, and /statusz against `registry`.
// `statusz_extra` (optional) is appended to the /statusz body — use it
// for application state the registry does not carry (queue depths,
// per-service tables).
void serve_metrics(HttpServer& server, telemetry::MetricRegistry& registry,
                   std::function<std::string()> statusz_extra = nullptr);

// Register the live profiling endpoints against telemetry::Profiler:
//   /debug/pprof          index
//   /debug/pprof/profile  on-demand CPU capture; ?seconds=N (default 5,
//                         clamped to [1,60]), ?hz=N (default 99),
//                         ?format=folded|speedscope. Blocks the serve
//                         thread for the capture window. If a capture
//                         is already running, returns its snapshot.
//   /debug/pprof/heap     allocation attribution, folded "stage bytes"
//   /debug/pprof/cmdline  /proc/self/cmdline, NUL -> space
void serve_pprof(HttpServer& server);

// "seconds=3&hz=97" -> query_param(q, "hz") == "97"; "" when absent.
[[nodiscard]] std::string query_param(const std::string& query, const std::string& key);

}  // namespace mar::net
