// Minimal from-scratch HTTP/1.1 server for the live metrics plane.
//
// One blocking accept thread, one request per connection (keep-alive is
// deliberately off: a scraper opens, reads, closes), GET-only. Handlers
// are registered per path before start() and produce the full response
// body on each request; everything else is a 404. This is not a general
// web server — it exists so `curl localhost:<port>/metrics` works
// against any live pipeline process with zero dependencies.
//
// serve_metrics() wires the standard trio onto a server:
//   /metrics  Prometheus exposition from the MetricRegistry
//   /healthz  "ok" once the process is serving
//   /statusz  human-readable snapshot (registry + optional extra text)
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "telemetry/registry.h"

namespace mar::net {

class HttpServer {
 public:
  using Handler = std::function<std::string()>;

  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Register a GET handler producing the response body. Call before
  // start(); `content_type` goes out verbatim in the response header.
  void handle(std::string path, std::string content_type, Handler fn);

  // Bind (0 = ephemeral), listen, and launch the accept thread.
  Status start(std::uint16_t port);
  // Idempotent; joins the accept thread.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(std::memory_order_relaxed); }
  // Bound port after start() (resolves an ephemeral request).
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  struct Route {
    std::string path;
    std::string content_type;
    Handler fn;
  };

  void serve_loop();
  void handle_connection(int fd);

  std::vector<Route> routes_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

// Register /metrics, /healthz, and /statusz against `registry`.
// `statusz_extra` (optional) is appended to the /statusz body — use it
// for application state the registry does not carry (queue depths,
// per-service tables).
void serve_metrics(HttpServer& server, telemetry::MetricRegistry& registry,
                   std::function<std::string()> statusz_extra = nullptr);

}  // namespace mar::net
