// Receiver-driven NACK retransmission for the fragment transport.
//
// The receiver watches the Reassembler's incomplete messages; once a
// message has been idle past the NACK timeout it sends the sender the
// list of still-missing fragment indexes. Rounds back off
// exponentially and stop after a per-frame budget — a frame that
// cannot be completed within the budget is abandoned and counted
// (mar_net_frames_unrecoverable_total), never waited on forever.
//
// The sender half retains a copy of each message's data fragments for
// a bounded window (count- and age-capped) and answers NACKs from that
// buffer, within a per-message retransmitted-fragment budget.
//
// The controller is a pure, clock-injected state machine: every method
// takes `now`, nothing sleeps, so the backoff schedule is unit-testable
// without wall-clock waits. net::FrameChannel drives it from poll();
// the epoll live path drives it from a housekeeping timer.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/fragment.h"

namespace mar::net {

struct RtxConfig {
  // Receiver: NACK rounds per message before giving the frame up.
  int max_rounds = 4;
  // Receiver: wait after the last fragment arrival before the first
  // NACK; doubles (backoff factor) each further round.
  std::chrono::milliseconds nack_timeout{25};
  double backoff = 2.0;
  // Sender: how long and how many messages to keep for retransmission.
  std::chrono::milliseconds retain_for{1500};
  std::size_t max_retained = 64;
  // Sender: max fragments retransmitted per message (all rounds).
  std::size_t rtx_budget = 64;
};

// Control datagrams share the sockets with fragments; first byte
// disambiguates (data 0xF7, parity 0xF8, NACK 0xF9, ACK 0xFA).
struct NackInfo {
  std::uint32_t message_id = 0;
  std::uint16_t count = 0;  // expected data fragments (diagnostic)
  std::vector<std::uint16_t> missing;
};
[[nodiscard]] std::vector<std::uint8_t> encode_nack(const NackInfo& nack);
[[nodiscard]] std::optional<NackInfo> parse_nack(std::span<const std::uint8_t> datagram);
[[nodiscard]] std::vector<std::uint8_t> encode_ack(std::uint32_t message_id);
[[nodiscard]] std::optional<std::uint32_t> parse_ack(std::span<const std::uint8_t> datagram);
[[nodiscard]] bool is_control_datagram(std::span<const std::uint8_t> datagram);

class RtxController {
 public:
  using Clock = std::chrono::steady_clock;

  explicit RtxController(RtxConfig cfg = {}) : cfg_(cfg) {}
  [[nodiscard]] const RtxConfig& config() const { return cfg_; }

  // --- sender half ----------------------------------------------------
  // Keep `fragments` (data fragments, by index) for retransmission.
  void retain(std::uint32_t id, std::vector<std::vector<std::uint8_t>> fragments,
              Clock::time_point now);
  // Fragments to resend for a NACK, within the per-message budget.
  // Returned pointers stay valid until the message is released.
  [[nodiscard]] std::vector<const std::vector<std::uint8_t>*> handle_nack(
      const NackInfo& nack);
  void handle_ack(std::uint32_t id) { retained_.erase(id); }
  // Age out retained messages past cfg.retain_for.
  void expire_retained(Clock::time_point now);
  [[nodiscard]] std::size_t retained() const { return retained_.size(); }
  [[nodiscard]] std::uint64_t fragments_retransmitted() const { return rtx_fragments_; }
  [[nodiscard]] std::uint64_t rtx_budget_exhausted() const { return budget_exhausted_; }

  // --- receiver half --------------------------------------------------
  struct NackDecision {
    std::uint32_t id = 0;
    std::uint16_t count = 0;
    std::vector<std::uint16_t> missing;
  };
  struct Due {
    std::vector<NackDecision> nacks;   // send these now
    std::vector<std::uint32_t> abandon;  // budget exhausted: drop these
  };
  // Inspect the reassembler's incomplete messages and return the NACKs
  // whose (backed-off) deadline has passed, advancing the schedule.
  [[nodiscard]] Due due(const Reassembler& reassembler, Clock::time_point now);
  // Forget receiver-side schedule state for a completed/abandoned id.
  void forget(std::uint32_t id) { schedule_.erase(id); }
  [[nodiscard]] std::uint64_t nacks_sent() const { return nacks_sent_; }
  [[nodiscard]] std::uint64_t frames_abandoned() const { return frames_abandoned_; }
  // Whether any NACK was ever issued for `id` (distinguishes FEC-only
  // recoveries from round-trip ones).
  [[nodiscard]] bool nacked(std::uint32_t id) const {
    auto it = schedule_.find(id);
    return it != schedule_.end() && it->second.rounds > 0;
  }

 private:
  struct RetainedMessage {
    std::vector<std::vector<std::uint8_t>> fragments;
    std::size_t budget_left = 0;
    Clock::time_point since;
  };
  struct NackSchedule {
    int rounds = 0;
    std::size_t seen_received = 0;  // progress resets the timer
    Clock::time_point next_at{};
    bool armed = false;
  };

  RtxConfig cfg_;
  std::unordered_map<std::uint32_t, RetainedMessage> retained_;
  std::unordered_map<std::uint32_t, NackSchedule> schedule_;
  std::uint64_t rtx_fragments_ = 0;
  std::uint64_t budget_exhausted_ = 0;
  std::uint64_t nacks_sent_ = 0;
  std::uint64_t frames_abandoned_ = 0;
};

}  // namespace mar::net
