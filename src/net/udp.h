// Thin RAII wrapper over POSIX UDP sockets (IPv4, non-blocking), used
// by the live pipeline examples to move real frames between real
// processes/threads — same wire format as the simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace mar::net {

struct SockAddr {
  std::uint32_t ip = 0;  // host byte order; 127.0.0.1 = 0x7F000001
  std::uint16_t port = 0;

  static SockAddr loopback(std::uint16_t port) { return SockAddr{0x7F000001u, port}; }
  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const SockAddr&, const SockAddr&) = default;
};

class UdpSocket {
 public:
  UdpSocket() = default;
  ~UdpSocket();
  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  // Open a non-blocking socket, optionally bound to `bind_port`
  // (0 = ephemeral). Enlarges the receive buffer for frame bursts.
  Status open(std::uint16_t bind_port = 0);
  void close();
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  // Local address after bind (resolves ephemeral ports).
  [[nodiscard]] Result<SockAddr> local_addr() const;

  // Non-blocking send; returns bytes sent or a status on error.
  Result<std::size_t> send_to(std::span<const std::uint8_t> data, const SockAddr& dst);

  // Non-blocking receive; nullopt when nothing is pending.
  struct Datagram {
    std::vector<std::uint8_t> data;
    SockAddr from;
  };
  [[nodiscard]] std::optional<Datagram> receive();

  // Block up to `timeout_ms` for readability (poll).
  [[nodiscard]] bool wait_readable(int timeout_ms) const;

  // Error accounting: failed sendto() calls and recvfrom() errors other
  // than "nothing pending" (EAGAIN/EWOULDBLOCK). receive() returning
  // nullopt is ambiguous by design (UDP has no error channel worth
  // blocking on); these counters disambiguate it for diagnostics.
  [[nodiscard]] std::uint64_t send_errors() const { return send_errors_; }
  [[nodiscard]] std::uint64_t recv_errors() const { return recv_errors_; }

 private:
  int fd_ = -1;
  std::uint64_t send_errors_ = 0;
  std::uint64_t recv_errors_ = 0;
};

}  // namespace mar::net
