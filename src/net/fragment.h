// Datagram fragmentation/reassembly for large frames.
//
// A serialized FramePacket can exceed 400 KB; UDP datagrams top out
// near 64 KB, so the live transport splits messages into numbered
// fragments and reassembles them on the far side. Incomplete messages
// are garbage-collected after a timeout — a lost fragment loses the
// whole frame, mirroring the simulator's fragment-level loss model.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

namespace mar::net {

inline constexpr std::size_t kMaxFragmentPayload = 60 * 1024;
inline constexpr std::size_t kFragmentHeaderBytes = 13;

// Split `message` into fragment datagrams (each ready to send).
[[nodiscard]] std::vector<std::vector<std::uint8_t>> fragment_message(
    std::span<const std::uint8_t> message, std::uint32_t message_id);

class Reassembler {
 public:
  explicit Reassembler(std::chrono::milliseconds timeout = std::chrono::milliseconds(500))
      : timeout_(timeout) {}

  // Feed one received datagram; returns the full message when this
  // fragment completes it.
  std::optional<std::vector<std::uint8_t>> add(std::span<const std::uint8_t> datagram);

  // Drop partial messages older than the timeout.
  void garbage_collect();

  [[nodiscard]] std::size_t pending() const { return partial_.size(); }
  [[nodiscard]] std::uint64_t expired() const { return expired_; }

 private:
  struct Partial {
    std::vector<std::vector<std::uint8_t>> fragments;
    std::size_t received = 0;
    std::chrono::steady_clock::time_point first_seen;
  };

  std::chrono::milliseconds timeout_;
  std::unordered_map<std::uint32_t, Partial> partial_;
  std::uint64_t expired_ = 0;
};

}  // namespace mar::net
