// Datagram fragmentation/reassembly for large frames, with optional
// XOR-parity FEC and the introspection hooks the NACK retransmission
// controller (net/rtx.h) needs.
//
// A serialized FramePacket can exceed 400 KB; UDP datagrams top out
// near 64 KB, so the live transport splits messages into numbered
// fragments and reassembles them on the far side. Three recovery tiers
// stack on that base:
//
//   * fire-and-forget (the original behavior): a lost fragment loses
//     the whole frame, mirroring sim::LinkModel::survives;
//   * XOR-parity FEC: the sender appends one parity datagram per
//     group of k data fragments (fec_parity_fragments); a single loss
//     inside a group repairs locally, without a round trip;
//   * NACK retransmission: the receiver asks for the still-missing
//     fragments (net::RtxController) with exponential backoff and a
//     per-frame budget.
//
// Incomplete messages are garbage-collected after an inactivity
// timeout, and the set of in-flight partials is capped (max_pending)
// so a hostile or badly lossy peer cannot grow memory without bound —
// beyond the cap the stalest partial is evicted and counted.
//
// Completed (and explicitly abandoned) message ids are remembered in a
// bounded ring so stragglers — a late parity datagram, a duplicate
// retransmission that crossed the completion ACK — cannot resurrect a
// message and deliver it twice. (A parity datagram over a one-fragment
// group IS that fragment, so without the memory a message could
// complete once from data and again from its own parity.)
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mar::net {

inline constexpr std::size_t kMaxFragmentPayload = 60 * 1024;
inline constexpr std::size_t kFragmentHeaderBytes = 13;
inline constexpr std::size_t kParityHeaderBytes = 18;
inline constexpr std::size_t kDefaultMaxPending = 64;
// How many completed/abandoned message ids a Reassembler remembers in
// order to drop late duplicates and stray parity.
inline constexpr std::size_t kCompletedMemory = 1024;

// Split `message` into fragment datagrams (each ready to send).
[[nodiscard]] std::vector<std::vector<std::uint8_t>> fragment_message(
    std::span<const std::uint8_t> message, std::uint32_t message_id);

// XOR-parity datagrams for `message`'s data fragments, one per group
// of `group_size` (k) fragments, including the final partial group.
// Each parity payload is the XOR of its group's payloads zero-padded
// to the group's longest fragment; the header carries enough (k, total
// message bytes) for the receiver to rebuild any single missing
// fragment of the group. group_size <= 0 yields no parity.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> fec_parity_fragments(
    std::span<const std::uint8_t> message, std::uint32_t message_id, int group_size);

class Reassembler {
 public:
  explicit Reassembler(std::chrono::milliseconds timeout = std::chrono::milliseconds(500),
                       std::size_t max_pending = kDefaultMaxPending)
      : timeout_(timeout), max_pending_(max_pending == 0 ? 1 : max_pending) {}

  // Everything add_ex learned from one datagram.
  struct AddResult {
    // Set when this datagram completed a message.
    std::optional<std::vector<std::uint8_t>> message;
    std::uint32_t id = 0;            // message id (valid when accepted)
    bool accepted = false;           // datagram parsed as fragment/parity
    std::uint32_t repaired = 0;      // FEC repairs performed by this add
    std::uint32_t message_repairs = 0;  // total repairs of the completed message
  };

  // Feed one received datagram; returns the full message when this
  // fragment completes it.
  std::optional<std::vector<std::uint8_t>> add(std::span<const std::uint8_t> datagram) {
    return add_ex(datagram).message;
  }
  AddResult add_ex(std::span<const std::uint8_t> datagram);

  // Drop partial messages idle longer than the timeout.
  void garbage_collect();

  // Forget a partial message (retransmission budget exhausted).
  bool abandon(std::uint32_t id);

  // --- introspection for the NACK controller -------------------------
  struct PendingMessage {
    std::uint32_t id = 0;
    std::uint16_t count = 0;     // expected data fragments
    std::size_t received = 0;
    std::chrono::steady_clock::time_point last_activity;
  };
  [[nodiscard]] std::vector<PendingMessage> pending_messages() const;
  [[nodiscard]] std::vector<std::uint16_t> missing_fragments(std::uint32_t id) const;

  [[nodiscard]] std::size_t pending() const { return partial_.size(); }
  [[nodiscard]] std::uint64_t expired() const { return expired_; }
  // Partials dropped by the max-pending cap (stalest-first eviction).
  [[nodiscard]] std::uint64_t evicted() const { return evicted_; }
  // Single-loss groups rebuilt from parity, no round trip needed.
  [[nodiscard]] std::uint64_t fec_repairs() const { return fec_repairs_; }
  // Cumulative expected data fragments of settled messages (completed,
  // abandoned, expired, or evicted): the denominator for a
  // receiver-observed loss-rate estimate (see FrameChannel's
  // mar_net_receiver_loss_ratio gauge).
  [[nodiscard]] std::uint64_t fragments_expected_done() const {
    return fragments_expected_done_;
  }

 private:
  struct Partial {
    std::vector<std::vector<std::uint8_t>> fragments;
    std::size_t received = 0;
    std::uint32_t repairs = 0;
    // FEC bookkeeping, populated by the first parity datagram seen.
    std::uint8_t fec_k = 0;
    std::uint32_t total_bytes = 0;
    std::unordered_map<std::uint16_t, std::vector<std::uint8_t>> parity;
    std::chrono::steady_clock::time_point first_seen;
    std::chrono::steady_clock::time_point last_activity;
  };

  AddResult accept_data(std::span<const std::uint8_t> datagram);
  AddResult accept_parity(std::span<const std::uint8_t> datagram);
  Partial* find_or_create(std::uint32_t id, std::uint16_t count,
                          std::chrono::steady_clock::time_point now);
  // Try to rebuild the single missing fragment of `group`; returns the
  // number of repairs performed (0 or 1).
  std::uint32_t try_repair_group(Partial& p, std::uint16_t group);
  AddResult complete(std::uint32_t id, Partial& p);
  // Record `id` as done (completed or abandoned): late datagrams for it
  // are dropped instead of resurrecting the message.
  void remember_done(std::uint32_t id);

  std::chrono::milliseconds timeout_;
  std::size_t max_pending_;
  std::unordered_map<std::uint32_t, Partial> partial_;
  std::unordered_set<std::uint32_t> done_;
  std::deque<std::uint32_t> done_order_;  // FIFO eviction for done_
  std::uint64_t expired_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t fec_repairs_ = 0;
  std::uint64_t fragments_expected_done_ = 0;
};

}  // namespace mar::net
