#include "expt/retention.h"

#include <algorithm>
#include <cmath>

namespace mar::expt {

TailSampler::TailSampler(TailRetentionConfig config)
    : config_(config),
      e2e_histogram_(telemetry::MetricRegistry::instance().histogram(
          "mar_frame_e2e_ms", "End-to-end frame latency (capture to result).",
          telemetry::FixedHistogram::default_latency_ms_bounds())) {
  window_.reserve(config_.outlier_window);
}

void TailSampler::observe_rolling(double e2e_ms) {
  if (config_.outlier_window == 0) return;
  if (window_.size() < config_.outlier_window) {
    window_.push_back(e2e_ms);
  } else {
    window_[window_next_] = e2e_ms;
    window_full_ = true;
  }
  window_next_ = (window_next_ + 1) % config_.outlier_window;

  // Warmed up once a quarter of the window (or the whole window for
  // tiny configs) has filled; until then the outlier bar is unknown and
  // outlier promotion stays off rather than firing on the first frames.
  const std::size_t warm = std::max<std::size_t>(1, config_.outlier_window / 4);
  if (window_.size() < warm) return;
  if (report_.frames_closed % kRecomputeEvery != 0 && rolling_p99_ms_ > 0.0) return;

  std::vector<double> sorted = window_;
  const auto rank = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(sorted.size()))) - 1;
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(rank), sorted.end());
  rolling_p99_ms_ = sorted[rank];
}

telemetry::RetainReason TailSampler::classify(double e2e_ms) {
  using telemetry::RetainReason;
  if (config_.promote_on_slo && slo_ != nullptr && slo_->violating()) {
    return RetainReason::kSlo;
  }
  if (config_.promote_on_fault && injector_ != nullptr &&
      injector_->active_windows() > 0) {
    return RetainReason::kFault;
  }
  if (config_.outlier_factor > 0.0 && rolling_p99_ms_ > 0.0 &&
      e2e_ms >= config_.outlier_factor * rolling_p99_ms_) {
    return RetainReason::kOutlier;
  }
  if (config_.baseline_every != 0 &&
      report_.frames_closed % config_.baseline_every == 0) {
    return RetainReason::kBaseline;
  }
  return RetainReason::kNone;
}

void TailSampler::on_frame_closed(const wire::FrameHeader& h, SimTime ts, double e2e_ms,
                                  bool /*success*/) {
  using telemetry::RetainReason;
  // Counted independently of the promotion verdict: the coverage
  // denominator for "SLO-breaching frames with a retained trace".
  if (slo_ != nullptr && slo_->violating()) ++report_.slo_breach_frames;
  const RetainReason reason = classify(e2e_ms);
  ++report_.frames_closed;
  observe_rolling(e2e_ms);

  bool promoted = false;
  if (h.trace.active()) {
    auto& recorder = telemetry::FlightRecorder::instance();
    if (reason != RetainReason::kNone) {
      // false means no flight buffer held this id — the frame was
      // head-sampled (already durable) or its slot was evicted.
      promoted = recorder.promote(h.trace.trace_id, h.client, h.frame, ts, reason);
      if (promoted) {
        switch (reason) {
          case RetainReason::kSlo: ++report_.retained_slo; break;
          case RetainReason::kFault: ++report_.retained_fault; break;
          case RetainReason::kOutlier: ++report_.retained_outlier; break;
          case RetainReason::kBaseline: ++report_.retained_baseline; break;
          default: break;
        }
      }
    } else if (recorder.recycle(h.trace.trace_id)) {
      ++report_.recycled;
    }
  }

  // Exemplars point only at traces guaranteed to be in the durable
  // ring — i.e. buffers this verdict just promoted.
  e2e_histogram_.observe(e2e_ms, promoted ? h.trace.trace_id : 0);
}

RetentionReport TailSampler::report() const {
  RetentionReport out = report_;
  out.enabled = true;
  const auto stats = telemetry::FlightRecorder::instance().stats();
  out.drop_flushed = stats.drop_flushed;
  out.evicted = stats.evicted;
  out.truncated = stats.truncated;
  return out;
}

}  // namespace mar::expt
