#include "expt/deployment.h"

namespace mar::expt {

PlacementConfig PlacementConfig::single(MachineId m) {
  PlacementConfig cfg;
  for (auto& r : cfg.replicas) r = {m};
  return cfg;
}

PlacementConfig PlacementConfig::per_stage(const std::array<MachineId, kNumStages>& machines) {
  PlacementConfig cfg;
  for (std::size_t i = 0; i < kNumStages; ++i) cfg.replicas[i] = {machines[i]};
  return cfg;
}

PlacementConfig PlacementConfig::replicated(const std::array<int, kNumStages>& counts,
                                            MachineId primary_site, MachineId secondary_site) {
  PlacementConfig cfg;
  for (std::size_t i = 0; i < kNumStages; ++i) {
    for (int r = 0; r < counts[i]; ++r) {
      cfg.replicas[i].push_back(r % 2 == 0 ? primary_site : secondary_site);
    }
  }
  return cfg;
}

Deployment::Deployment(Testbed& testbed, core::PipelineMode mode,
                       const PlacementConfig& placement, const hw::CostModel& costs,
                       std::optional<core::PipelineFeatures> features)
    : testbed_(testbed), costs_(costs) {
  env_.mode = mode;
  env_.features = features.value_or(core::PipelineFeatures::for_mode(mode));
  env_.router = &testbed_.orchestrator();

  for (int s = 0; s < kNumStages; ++s) {
    const auto stage = static_cast<Stage>(s);
    for (MachineId m : placement.of(stage)) {
      const InstanceId id = testbed_.orchestrator().deploy(
          stage, m, core::host_config_for(env_.features, stage), costs_,
          [this, stage] { return core::make_servicelet(env_, stage); });
      instances_.push_back(id);
    }
  }
}

InstanceId Deployment::add_replica(Stage stage, MachineId target) {
  const InstanceId id = testbed_.orchestrator().deploy(
      stage, target, core::host_config_for(env_.features, stage), costs_,
      [this, stage] { return core::make_servicelet(env_, stage); });
  instances_.push_back(id);
  return id;
}

std::vector<dsp::ServiceHost*> Deployment::hosts_of(Stage stage) {
  std::vector<dsp::ServiceHost*> out;
  for (InstanceId id : testbed_.orchestrator().instances_of(stage)) {
    out.push_back(&testbed_.orchestrator().host(id));
  }
  return out;
}

}  // namespace mar::expt
