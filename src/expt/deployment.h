// Pipeline deployment over the testbed: placement vectors in the
// paper's notation, ordered [primary, sift, encoding, lsh, matching].
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "core/services.h"
#include "expt/testbed.h"
#include "hw/cost_model.h"

namespace mar::expt {

struct PlacementConfig {
  // One entry per replica of each stage, naming its machine.
  std::array<std::vector<MachineId>, kNumStages> replicas;

  [[nodiscard]] std::vector<MachineId>& of(Stage s) {
    return replicas[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const std::vector<MachineId>& of(Stage s) const {
    return replicas[static_cast<std::size_t>(s)];
  }

  // All five services on one machine (C1, C2, cloud-only).
  static PlacementConfig single(MachineId m);

  // Per-stage machines, e.g. C12 = {E1,E1,E2,E2,E2}.
  static PlacementConfig per_stage(const std::array<MachineId, kNumStages>& machines);

  // Replica-count vector (paper's [1,2,2,1,2] notation): the first
  // replica of each stage goes on `primary_site`, additional replicas
  // alternate E1-style secondary then back (fig. 3 runs the base
  // pipeline on E2 with extra replicas on E1).
  static PlacementConfig replicated(const std::array<int, kNumStages>& counts,
                                    MachineId primary_site, MachineId secondary_site);
};

// A deployed pipeline: replicas placed via the orchestrator, wired to
// the semantic-addressing router.
class Deployment {
 public:
  // `features` overrides the mode's default mechanisms (used by the
  // ablation benches to toggle stateless sift and the sidecar
  // independently).
  Deployment(Testbed& testbed, core::PipelineMode mode, const PlacementConfig& placement,
             const hw::CostModel& costs,
             std::optional<core::PipelineFeatures> features = std::nullopt);

  [[nodiscard]] core::PipelineEnv& env() { return env_; }
  [[nodiscard]] core::PipelineMode mode() const { return env_.mode; }
  [[nodiscard]] const hw::CostModel& costs() const { return costs_; }
  [[nodiscard]] orchestra::Orchestrator& orchestrator() { return testbed_.orchestrator(); }
  [[nodiscard]] Testbed& testbed() { return testbed_; }

  // Deploy an additional replica of `stage` at runtime (scaling).
  InstanceId add_replica(Stage stage, MachineId target);

  [[nodiscard]] const std::vector<InstanceId>& instances() const { return instances_; }
  [[nodiscard]] std::vector<dsp::ServiceHost*> hosts_of(Stage stage);
  [[nodiscard]] dsp::ServiceHost& host(InstanceId id) {
    return testbed_.orchestrator().host(id);
  }

 private:
  Testbed& testbed_;
  const hw::CostModel& costs_;
  core::PipelineEnv env_;
  std::vector<InstanceId> instances_;
};

}  // namespace mar::expt
