// Capacity-planning engine: population-scale simulation on the
// partitioned DES.
//
// The per-figure Experiment runner drives every client frame-by-frame
// through the full service pipeline on one shared EventLoop — perfect
// for 6-client QoS figures, hopeless for "how many E2 boxes serve 100k
// users". CapacityEngine is the scale path: one partition (= one
// sim::PartitionedEngine logical process) per edge machine, each with
// its own GPU ResourcePool and MemoryAccount; a small set of detailed
// probe clients that pay per-frame event cost; and a sim::ClientCohort
// fluid tail per machine that carries the rest of the population,
// renegotiating pool capacity once per conservative-sync window.
//
// The two pipeline modes keep their paper-level mechanisms:
//   scAtteR     — stateful, drop-when-busy ingress: a frame arriving
//                 while every GPU slot is busy is lost (Erlang-loss
//                 behaviour); roaming clients pay a cross-partition
//                 state-fetch round trip before service.
//   scAtteR++   — stateless + sidecar queue: frames wait FIFO for a
//                 slot and are dropped at dequeue only when older than
//                 the staleness threshold (M/G/c with reneging); no
//                 state fetch, roaming or not.
//
// Determinism: every RNG draw for a frame happens in its client's home
// partition; cross-partition work carries pre-sampled durations, and
// all cohort/pool renegotiation runs on the coordinator between
// windows. Each partition folds its frame completions into an FNV-1a
// digest; the combined digest — and every result field — is
// bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "core/frame_flow.h"
#include "expt/population.h"
#include "hw/cost_model.h"
#include "hw/machine.h"
#include "hw/resource.h"
#include "sim/cohort.h"
#include "sim/partition.h"

namespace mar::expt {

// Explicit probe placement: one detailed client homed on partition
// `home` whose frames are served by partition `serve`, offered at
// `fps`. scAtteR pays the cross-partition state-fetch round trip when
// serve != home, exactly like the synthesized roaming probes.
struct CapacityProbeSpec {
  int home = 0;
  int serve = 0;
  double fps = 25.0;
};

struct CapacityConfig {
  core::PipelineMode mode = core::PipelineMode::kScatter;
  // Edge machines; one partition each.
  int machines = 4;
  hw::MachineSpec machine_spec = hw::MachineSpec::edge2();
  hw::CostModel costs = hw::CostModel::standard();
  // Fluid population carried by the per-machine cohorts (sessions are
  // spread uniformly across machines). mean_population 0 disables the
  // fluid tail (detailed-only run).
  PopulationConfig population;
  // Detailed per-frame probe clients, round-robined across machines.
  int detailed_clients = 8;
  // Non-empty: place probes explicitly instead of synthesizing the
  // detailed_clients/roaming_fraction layout. ctrl::PlacementSearch
  // uses this to put probes exactly on the partitions a candidate plan
  // changes; home/serve indices are clamped to [0, machines).
  std::vector<CapacityProbeSpec> probe_set;
  // Fraction of detailed clients whose frames are served by the next
  // machine over — the cross-partition traffic (scAtteR pays the
  // state-fetch round trip on these).
  double roaming_fraction = 0.125;
  // Client access link (one way) and inter-machine link (one way). The
  // inter-machine latency is the engine's conservative lookahead.
  SimDuration access_latency = millis(15.0);
  SimDuration cross_latency = millis(2.0);
  SimDuration warmup = seconds(2.0);
  SimDuration duration = seconds(30.0);
  double target_fps = 25.0;
  // A frame is successful when delivered within the XR latency budget
  // (costs.sidecar_threshold, 100 ms).
  std::uint64_t seed = 1;
  // Utilization timeline sample spacing (0 = no timeline).
  SimDuration timeline_interval = seconds(1.0);
};

struct CapacityTimelinePoint {
  double t_s = 0.0;
  double gpu = 0.0;     // mean GPU utilization since the previous point
  double mem_gb = 0.0;  // resident memory at sample time
  double sessions = 0.0;  // fluid sessions on this machine
};

struct CapacityMachineReport {
  std::string name;
  double gpu_util = 0.0;  // mean over the measurement window
  double mem_gb_mean = 0.0;
  double fluid_sessions_mean = 0.0;
  std::vector<CapacityTimelinePoint> timeline;
};

struct CapacityResult {
  std::string mode;
  int machines = 0;
  int detailed_clients = 0;
  double duration_s = 0.0;
  // Detailed probes: successful frames per client per second, and the
  // delivered-within-budget ratio.
  double detailed_fps_mean = 0.0;
  double detailed_target_fps_mean = 0.0;  // mean offered rate of the probes
  double detailed_success_rate = 0.0;
  double detailed_e2e_ms_mean = 0.0;
  // p99 E2E latency over every successful probe frame in the
  // measurement window (0 when no frame succeeded). The fast-evaluator
  // hook ctrl::PlacementSearch scores candidate plans on.
  double detailed_e2e_p99_ms = 0.0;
  // Fluid tail: per-session served FPS (mean over windows, weighted by
  // active sessions) and the mean concurrent fluid population.
  double fluid_session_fps = 0.0;
  double fluid_target_fps = 0.0;  // the cohorts' offered per-session rate
  double fluid_sessions_mean = 0.0;
  double fluid_frames_served = 0.0;
  // Engine telemetry for the run.
  std::uint64_t events_fired = 0;
  std::uint64_t messages_posted = 0;
  std::uint64_t lookahead_violations = 0;
  std::uint64_t windows_run = 0;
  // FNV-1a over every partition's frame-completion stream, combined in
  // partition index order. Equal digests = identical trajectories.
  std::uint64_t digest = 0;
  std::vector<CapacityMachineReport> machine_reports;
};

// Output of the machines-per-100k-users planning search.
struct CapacityPlan {
  std::string mode;
  int clients_per_box = 0;
  // ceil(100000 / clients_per_box); 0 when no density sustains the SLO.
  int machines_per_100k = 0;
  std::string binding_constraint;  // "gpu" or "memory"
  int gpu_bound_clients = 0;
  int memory_bound_clients = 0;
  // Measured QoS at the planned density (one box, detailed clients).
  double fps_at_plan = 0.0;
  double success_at_plan = 0.0;
};

class CapacityEngine {
 public:
  explicit CapacityEngine(CapacityConfig config);
  ~CapacityEngine();

  // Run to warmup + duration. threads <= 1 is the sequential engine;
  // threads > 1 fans windows out over the process ThreadPool (bounded
  // by mar::set_parallel_threads / MAR_THREADS like everything else).
  CapacityResult run(int threads);

  // Find the highest per-box client density whose detailed simulation
  // holds >= min_fraction of target FPS and success rate, then convert
  // to machines per 100k users. Pure function of (config, mode): runs
  // its own short single-machine simulations.
  static CapacityPlan plan_machines(const CapacityConfig& config, double min_fraction = 0.85);

  // Resident bytes one session pins on its serving machine under
  // `mode` (scAtteR: per-frame sift state retained for state_timeout;
  // scAtteR++: the sidecar's per-client buffer).
  static std::uint64_t session_memory_bytes(const CapacityConfig& config,
                                            core::PipelineMode mode);

  // Effective GPU time one frame costs on the configured machine.
  static SimDuration frame_gpu_time(const CapacityConfig& config);

 private:
  struct Partition;  // per-machine state (pool, cohort, probes, digest)
  struct ProbeClient;

  void build();
  void schedule_frame(ProbeClient& c);
  void begin_service(int part, SimTime born, SimDuration service,
                     std::uint32_t client_idx, std::uint64_t frame_idx, int home);
  void finish_frame(int home, std::uint32_t client_idx, std::uint64_t frame_idx,
                    SimTime born, bool success);
  void on_window(SimTime wstart, SimTime wend);

  CapacityConfig config_;
  std::unique_ptr<PopulationModel> population_;
  std::unique_ptr<sim::PartitionedEngine> engine_;
  std::vector<std::unique_ptr<Partition>> parts_;
  std::vector<std::unique_ptr<ProbeClient>> probes_;
  std::uint32_t pool_capacity_units_ = 0;
  SimDuration frame_gpu_time_ = 0;
  double service_cv_ = 0.15;
  SimTime t_end_ = 0;
  SimTime next_sample_ = 0;
  SimTime meas_start_ = 0;
  bool measuring_ = false;
  double fluid_fps_weighted_ = 0.0;    // sum(session_fps * active * dt)
  double fluid_session_weight_ = 0.0;  // sum(active * dt)
  bool built_ = false;
  bool ran_ = false;
};

}  // namespace mar::expt
