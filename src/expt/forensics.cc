#include "expt/forensics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

namespace mar::expt {
namespace {

using telemetry::TraceEvent;
using telemetry::TracePhase;

bool is_terminal_drop_name(const char* name) {
  namespace spans = telemetry::spans;
  static constexpr const char* kDropNames[] = {
      spans::kDropBusy, spans::kDropStale, spans::kDropOverflow, spans::kDropDown,
      spans::kPacketLoss, spans::kTailDrop, spans::kFetchTimeout,
  };
  for (const char* d : kDropNames) {
    if (std::strcmp(name, d) == 0) return true;
  }
  return false;
}

std::string fmt_ms(double ms) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

}  // namespace

TraceLog from_tracer(const telemetry::Tracer& tracer) {
  TraceLog log;
  log.events = tracer.snapshot();
  log.track_names = tracer.track_names();
  return log;
}

std::optional<TraceLog> parse_trace_log(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line.rfind("# mar-trace-events v1", 0) != 0) {
    return std::nullopt;
  }
  TraceLog log;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "track") {
      std::uint32_t track = 0;
      ls >> track;
      std::string name;
      std::getline(ls, name);
      if (!name.empty() && name.front() == ' ') name.erase(0, 1);
      log.track_names[track] = name;
      continue;
    }
    if (tag != "ev") continue;
    TraceEvent e;
    unsigned phase = 0, stage = 0;
    std::string name;
    if (!(ls >> e.ts >> e.dur >> e.value >> phase >> stage >> e.track >> e.lane >>
          e.client >> e.frame >> e.trace_id >> name)) {
      continue;  // malformed line
    }
    e.phase = static_cast<TracePhase>(phase);
    e.stage = static_cast<Stage>(stage);
    log.name_storage.push_back(std::move(name));
    e.name = log.name_storage.back().c_str();
    log.events.push_back(e);
  }
  return log;
}

std::optional<TraceLog> load_trace_log(const std::string& path) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  std::ostringstream body;
  body << f.rdbuf();
  return parse_trace_log(body.str());
}

std::optional<FrameTimeline> reconstruct_frame(const TraceLog& log,
                                               std::uint32_t trace_id) {
  if (trace_id == 0) return std::nullopt;
  FrameTimeline tl;
  tl.trace_id = trace_id;
  bool any = false;

  // Begin/end pairing per {track, name, stage}, record order — the
  // same key the Tracer's exporters use, scoped to this one frame.
  using Key = std::tuple<std::uint32_t, std::string, std::uint8_t>;
  std::map<Key, std::vector<std::pair<SimTime, double>>> open;

  for (const TraceEvent& e : log.events) {
    if (e.trace_id != trace_id) continue;
    if (!any) {
      tl.capture_ts = e.ts;
      tl.client = e.client;
      tl.frame = e.frame;
      any = true;
    }
    tl.last_ts = std::max(tl.last_ts, e.ts + (e.phase == TracePhase::kComplete ? e.dur : 0));
    const Key key{e.track, e.name, static_cast<std::uint8_t>(e.stage)};
    switch (e.phase) {
      case TracePhase::kBegin:
        open[key].push_back({e.ts, e.value});
        break;
      case TracePhase::kEnd: {
        TimelineHop hop;
        auto it = open.find(key);
        if (it != open.end() && !it->second.empty()) {
          hop.start = it->second.back().first;
          hop.value = it->second.back().second;
          it->second.pop_back();
        } else {
          hop.start = e.ts;  // clipped begin: zero-length marker
        }
        hop.end = e.ts;
        hop.track = log.track_label(e.track);
        hop.name = e.name;
        hop.stage = e.stage;
        hop.phase = TracePhase::kEnd;
        tl.hops.push_back(std::move(hop));
        if (std::strcmp(e.name, telemetry::spans::kFrameE2e) == 0) {
          tl.verdict = "result";
        }
        break;
      }
      case TracePhase::kComplete: {
        TimelineHop hop;
        hop.start = e.ts;
        hop.end = e.ts + e.dur;
        hop.track = log.track_label(e.track);
        hop.name = e.name;
        hop.stage = e.stage;
        hop.phase = TracePhase::kComplete;
        hop.value = e.value;
        tl.hops.push_back(std::move(hop));
        break;
      }
      case TracePhase::kInstant: {
        if (std::strcmp(e.name, telemetry::spans::kRetained) == 0) {
          tl.retain_reason = static_cast<telemetry::RetainReason>(
              static_cast<int>(e.value));
          break;  // synthetic marker, not a hop
        }
        TimelineHop hop;
        hop.start = e.ts;
        hop.end = e.ts;
        hop.track = log.track_label(e.track);
        hop.name = e.name;
        hop.stage = e.stage;
        hop.phase = TracePhase::kInstant;
        hop.value = e.value;
        tl.hops.push_back(std::move(hop));
        if (is_terminal_drop_name(e.name)) tl.verdict = e.name;
        break;
      }
      case TracePhase::kCounter:
        break;  // counters are not frame-scoped
    }
  }
  if (!any) return std::nullopt;

  // Spans still open at the end of the log (the frame died mid-hop, or
  // the run ended): surface them as open hops so the timeline shows
  // where the frame was stuck.
  for (auto& [key, starts] : open) {
    for (const auto& [start, value] : starts) {
      TimelineHop hop;
      hop.start = start;
      hop.end = start;
      hop.track = log.track_label(std::get<0>(key));
      hop.name = std::get<1>(key);
      hop.stage = static_cast<Stage>(std::get<2>(key));
      hop.phase = TracePhase::kBegin;
      hop.value = value;
      hop.open = true;
      tl.hops.push_back(std::move(hop));
    }
  }

  std::stable_sort(tl.hops.begin(), tl.hops.end(),
                   [](const TimelineHop& a, const TimelineHop& b) {
                     return a.start < b.start;
                   });
  return tl;
}

std::string render_timeline(const FrameTimeline& tl) {
  std::ostringstream out;
  out << "== trace " << tl.trace_id << " · client " << tl.client << " frame "
      << tl.frame << " · verdict " << tl.verdict;
  if (tl.retain_reason != telemetry::RetainReason::kNone) {
    out << " · retained: " << telemetry::to_string(tl.retain_reason);
  }
  out << " ==\n";
  out << "capture at " << fmt_ms(to_millis(tl.capture_ts)) << " ms, verdict at +"
      << fmt_ms(tl.span_ms()) << " ms\n\ntimeline:\n";

  for (const TimelineHop& hop : tl.hops) {
    out << "  +" << fmt_ms(to_millis(hop.start - tl.capture_ts)) << " ms  ";
    char line[160];
    if (hop.phase == TracePhase::kInstant) {
      std::snprintf(line, sizeof(line), "%-22s %-14s [instant, stage=%s]",
                    hop.name.c_str(), hop.track.c_str(), to_string(hop.stage));
    } else if (hop.open) {
      std::snprintf(line, sizeof(line), "%-22s %-14s [still open, stage=%s]",
                    hop.name.c_str(), hop.track.c_str(), to_string(hop.stage));
    } else {
      std::snprintf(line, sizeof(line), "%-22s %-14s %8s ms  [stage=%s]",
                    hop.name.c_str(), hop.track.c_str(), fmt_ms(hop.dur_ms()).c_str(),
                    to_string(hop.stage));
    }
    out << line << "\n";
  }

  // Per-hop budget: how the capture→verdict span divides over hops with
  // real durations (instants and the e2e envelope itself excluded).
  const double span = tl.span_ms();
  out << "\nper-hop budget (of " << fmt_ms(span) << " ms capture->verdict):\n";
  char header[120];
  std::snprintf(header, sizeof(header), "  %-22s %-14s %10s %8s\n", "hop", "track",
                "dur_ms", "% e2e");
  out << header;
  double accounted = 0.0;
  for (const TimelineHop& hop : tl.hops) {
    if (hop.phase == TracePhase::kInstant || hop.open) continue;
    if (hop.name == telemetry::spans::kFrameE2e) continue;
    const double ms = hop.dur_ms();
    accounted += ms;
    char row[120];
    std::snprintf(row, sizeof(row), "  %-22s %-14s %10s %8.1f\n", hop.name.c_str(),
                  hop.track.c_str(), fmt_ms(ms).c_str(),
                  span > 0.0 ? 100.0 * ms / span : 0.0);
    out << row;
  }
  char total[120];
  std::snprintf(total, sizeof(total), "  %-22s %-14s %10s %8.1f\n", "(accounted)", "",
                fmt_ms(accounted).c_str(), span > 0.0 ? 100.0 * accounted / span : 0.0);
  out << total;
  return out.str();
}

namespace {

// Per-id first/last timestamps plus drop verdicts in one pass.
struct IdSpan {
  SimTime first = 0;
  SimTime last = 0;
  bool dropped = false;
};

std::vector<std::pair<std::uint32_t, IdSpan>> id_spans(const TraceLog& log) {
  std::vector<std::pair<std::uint32_t, IdSpan>> order;
  std::unordered_map<std::uint32_t, std::size_t> index;
  for (const TraceEvent& e : log.events) {
    if (e.trace_id == 0) continue;
    auto [it, inserted] = index.try_emplace(e.trace_id, order.size());
    if (inserted) order.push_back({e.trace_id, IdSpan{e.ts, e.ts, false}});
    IdSpan& s = order[it->second].second;
    s.last = std::max(s.last, e.ts + (e.phase == TracePhase::kComplete ? e.dur : 0));
    if (e.phase == TracePhase::kInstant && is_terminal_drop_name(e.name)) {
      s.dropped = true;
    }
  }
  return order;
}

}  // namespace

std::vector<std::uint32_t> worst_trace_ids(const TraceLog& log, std::size_t n) {
  auto spans = id_spans(log);
  std::stable_sort(spans.begin(), spans.end(), [](const auto& a, const auto& b) {
    return a.second.last - a.second.first > b.second.last - b.second.first;
  });
  std::vector<std::uint32_t> out;
  for (const auto& [id, span] : spans) {
    if (out.size() >= n) break;
    out.push_back(id);
  }
  return out;
}

std::vector<std::uint32_t> dropped_trace_ids(const TraceLog& log) {
  std::vector<std::uint32_t> out;
  for (const auto& [id, span] : id_spans(log)) {
    if (span.dropped) out.push_back(id);
  }
  return out;
}

std::vector<std::uint32_t> all_trace_ids(const TraceLog& log) {
  std::vector<std::uint32_t> out;
  for (const auto& [id, span] : id_spans(log)) out.push_back(id);
  return out;
}

}  // namespace mar::expt
