// Population workload generator.
//
// The paper's figures stream a handful of scripted clients; capacity
// planning needs a *population*: sessions that arrive as a Poisson
// process whose rate follows a diurnal curve, stay for an exponential
// holding time, and come from a mix of device classes (phones,
// headsets, tablets) with different offered frame rates. The model is
// split into a deterministic rate function (drives the fluid
// ClientCohort tail) and a seeded sampler (draws discrete arrivals for
// the detailed per-frame clients), so the fluid and detailed halves of
// a capacity run describe the same workload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace mar::expt {

struct DeviceClass {
  std::string name;
  double fps = 25.0;     // offered camera frame rate
  double weight = 1.0;   // share of arriving sessions (normalized)
};

struct PopulationConfig {
  // Steady-state session population at the diurnal mean (= arrival
  // rate * mean session length, by Little's law).
  double mean_population = 100000.0;
  // Mean session holding time; sessions churn out exponentially.
  double session_mean_s = 300.0;
  // Diurnal load curve: rate(t) = base * (1 + amplitude * sin(...)).
  // amplitude 0 gives a flat Poisson process.
  double diurnal_amplitude = 0.3;
  double diurnal_period_s = 86400.0;
  double diurnal_phase = 0.0;  // radians; 0 starts at the mean, rising
  std::vector<DeviceClass> device_mix;  // empty = default_mix()

  static std::vector<DeviceClass> default_mix();
};

// One sampled session arrival.
struct SessionArrival {
  SimTime at = 0;
  SimDuration duration = 0;
  int device_class = 0;
};

class PopulationModel {
 public:
  explicit PopulationModel(PopulationConfig config, std::uint64_t seed);

  [[nodiscard]] const PopulationConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<DeviceClass>& mix() const { return mix_; }

  // Session arrival rate (sessions/s) at simulated time t — the
  // deterministic fluid drive. Never negative (amplitude is clamped).
  [[nodiscard]] double arrival_rate(SimTime t) const;

  // Expected concurrent sessions at t (quasi-static Little's law; exact
  // for diurnal periods >> session length, which holds for the paper's
  // minutes-long AR sessions against an hours-scale load curve).
  [[nodiscard]] double expected_population(SimTime t) const;

  // Offered frames/s per session, averaged over the device mix.
  [[nodiscard]] double mean_session_fps() const;

  // Draw the discrete arrivals in [t0, t1) by thinning against the
  // window's peak rate. Consumes the model's own RNG stream: calling
  // with the same seed and the same window sequence reproduces the
  // same arrivals bit-for-bit.
  std::vector<SessionArrival> sample_arrivals(SimTime t0, SimTime t1);

  // Start times for n clients ramping up linearly over `ramp` (client 0
  // at 0, client n-1 just before ramp's end) — the autoscaler smoke
  // test's arrival schedule.
  [[nodiscard]] static std::vector<SimDuration> ramp_starts(int n, SimDuration ramp);

 private:
  PopulationConfig config_;
  std::vector<DeviceClass> mix_;  // weights normalized to sum 1
  Rng rng_;
};

}  // namespace mar::expt
