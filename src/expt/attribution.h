// Latency attribution + SLO burn forecasting: the analysis layer on
// top of the raw traces.
//
// Two halves:
//
//  * Blame reports. build_blame_report() runs the telemetry
//    critical-path extractor over every traced frame in a TraceLog and
//    folds delivered frames into percentile bands (p50 = the fast
//    half, p90, p99, p100 = the worst 1%), ranked by E2E. Each band
//    reports mean per-component milliseconds and the per-stage
//    queue/service split, so "why is p99 high?" is answered by a table
//    instead of a Perfetto session. The report renders three ways:
//    render_blame_table() for /statusz and CLIs, blame_report_json()
//    for /debug/blame, and publish_blame_gauges() for
//    mar_blame_ms{component,percentile} on /metrics.
//
//  * BurnRate. Multi-window SLO error-budget burn (fast 5 s / slow
//    60 s sim-time windows over SloWatchdog breach state — the
//    Google-SRE multi-window alert shape) plus a least-squares ingress
//    trend over arrival-rate samples. burn >= 1 means the error budget
//    is being spent faster than the budget fraction allows; a positive
//    trend while the fast window burns is the forward-looking signal
//    ctrl::ReOptimizer's predictive arm acts on before drops start.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "expt/forensics.h"
#include "telemetry/critical_path.h"

namespace mar::expt {

// One percentile band of the delivered-frame population, ranked by
// E2E envelope time. lo/hi are rank fractions: p99 = [0.90, 0.99).
struct BlameBand {
  std::string label;
  double lo = 0.0;
  double hi = 0.0;
  int frames = 0;
  double mean_total_ms = 0.0;
  double max_total_ms = 0.0;
  // Band-mean milliseconds per component (indexed by PathComponent).
  std::array<double, telemetry::kNumPathComponents> mean_ms{};
  // Band-mean queue wait vs service self-time per stage.
  std::array<double, kNumStages> queue_ms{};
  std::array<double, kNumStages> service_ms{};
};

struct BlameReport {
  int frames_total = 0;       // traced frames in the log
  int frames_delivered = 0;   // verdict "result" — the banded population
  int frames_dropped = 0;     // terminal drop/loss verdict
  int frames_incomplete = 0;  // run clipped mid-flight
  int open_spans = 0;         // clamped begins across all frames
  int orphan_ends = 0;        // cross-track orphan ends across all frames
  double e2e_p99_ms = 0.0;    // p99 of delivered envelope times
  std::array<double, telemetry::kNumPathComponents> overall_mean_ms{};
  std::vector<BlameBand> bands;  // p50, p90, p99, p100 (non-empty only)
};

// Fold every traced frame in the log into a blame report.
[[nodiscard]] BlameReport build_blame_report(const TraceLog& log);

// Fixed-width blame table (per band: total + every non-zero component).
[[nodiscard]] std::string render_blame_table(const BlameReport& r);

// JSON for /debug/blame: counts, bands with per-component means, and
// the per-stage queue/service split.
[[nodiscard]] std::string blame_report_json(const BlameReport& r);

// Export mar_blame_ms{component,percentile} gauges (band means; the
// "overall" percentile label carries the all-delivered mean).
void publish_blame_gauges(const BlameReport& r);

// --- SLO burn-rate forecasting ---------------------------------------

struct BurnRateConfig {
  SimDuration fast_window = seconds(5.0);
  SimDuration slow_window = seconds(60.0);
  // Ingress-trend fit window (least-squares over arrival samples).
  SimDuration trend_window = seconds(10.0);
  // Error budget: the fraction of time the SLO is allowed to be in
  // breach. burn = breach fraction / budget, so burn >= 1 means the
  // budget is being consumed at or above the allowed rate.
  double budget = 0.01;
};

// Tracks SLO breach state and ingress samples over sliding sim-time
// windows. Feed one observe() per control tick; time must not go
// backwards. Deterministic: same observations, same numbers.
class BurnRate {
 public:
  explicit BurnRate(BurnRateConfig config = {});

  void observe(SimTime t, bool violating, double ingress_fps);

  // Breach-time fraction over [now - window, now] divided by budget.
  // 0 with no samples in the window.
  [[nodiscard]] double burn(SimTime now, SimDuration window) const;
  [[nodiscard]] double fast_burn(SimTime now) const { return burn(now, cfg_.fast_window); }
  [[nodiscard]] double slow_burn(SimTime now) const { return burn(now, cfg_.slow_window); }

  // Least-squares slope of ingress_fps over [now - trend_window, now],
  // in fps per second. 0 until >= 3 samples span nonzero time.
  [[nodiscard]] double ingress_trend_fps_per_s(SimTime now) const;

  // Export mar_slo_burn_rate{window="fast"|"slow"} and
  // mar_ingress_trend_fps gauges.
  void publish(SimTime now) const;

  [[nodiscard]] const BurnRateConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t samples() const { return samples_.size(); }

 private:
  struct Sample {
    SimTime t;
    bool violating;
    double ingress_fps;
  };

  BurnRateConfig cfg_;
  std::deque<Sample> samples_;
};

}  // namespace mar::expt
