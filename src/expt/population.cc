#include "expt/population.h"

#include <algorithm>
#include <cmath>

namespace mar::expt {

std::vector<DeviceClass> PopulationConfig::default_mix() {
  // Phones dominate; headsets push the 30 FPS XR budget; tablets run
  // conservative capture rates.
  return {
      DeviceClass{"phone", 25.0, 0.70},
      DeviceClass{"headset", 30.0, 0.20},
      DeviceClass{"tablet", 15.0, 0.10},
  };
}

PopulationModel::PopulationModel(PopulationConfig config, std::uint64_t seed)
    : config_(std::move(config)), rng_(seed) {
  mix_ = config_.device_mix.empty() ? PopulationConfig::default_mix() : config_.device_mix;
  double total = 0.0;
  for (const DeviceClass& d : mix_) total += std::max(d.weight, 0.0);
  if (total <= 0.0) total = 1.0;
  for (DeviceClass& d : mix_) d.weight = std::max(d.weight, 0.0) / total;
}

double PopulationModel::arrival_rate(SimTime t) const {
  const double ts = std::max(config_.session_mean_s, 1e-9);
  const double base = config_.mean_population / ts;
  const double amp = std::clamp(config_.diurnal_amplitude, 0.0, 1.0);
  if (amp == 0.0 || config_.diurnal_period_s <= 0.0) return base;
  const double phase =
      2.0 * 3.14159265358979323846 * to_seconds(t) / config_.diurnal_period_s +
      config_.diurnal_phase;
  return base * (1.0 + amp * std::sin(phase));
}

double PopulationModel::expected_population(SimTime t) const {
  return arrival_rate(t) * std::max(config_.session_mean_s, 1e-9);
}

double PopulationModel::mean_session_fps() const {
  double fps = 0.0;
  for (const DeviceClass& d : mix_) fps += d.weight * d.fps;
  return fps;
}

std::vector<SessionArrival> PopulationModel::sample_arrivals(SimTime t0, SimTime t1) {
  std::vector<SessionArrival> out;
  if (t1 <= t0) return out;
  // Thinning: propose at the window's peak rate, accept with
  // rate(t)/peak. Exact for any bounded rate function.
  const double peak = config_.mean_population / std::max(config_.session_mean_s, 1e-9) *
                      (1.0 + std::clamp(config_.diurnal_amplitude, 0.0, 1.0));
  if (peak <= 0.0) return out;
  double t = to_seconds(t0);
  const double end = to_seconds(t1);
  while (true) {
    t += rng_.exponential(1.0 / peak);
    if (t >= end) break;
    const SimTime at = seconds(t);
    if (rng_.next_double() * peak > arrival_rate(at)) continue;  // thinned
    SessionArrival a;
    a.at = at;
    a.duration = seconds(rng_.exponential(std::max(config_.session_mean_s, 1e-9)));
    const double u = rng_.next_double();
    double cum = 0.0;
    a.device_class = 0;
    for (std::size_t i = 0; i < mix_.size(); ++i) {
      cum += mix_[i].weight;
      if (u < cum) {
        a.device_class = static_cast<int>(i);
        break;
      }
    }
    out.push_back(a);
  }
  return out;
}

std::vector<SimDuration> PopulationModel::ramp_starts(int n, SimDuration ramp) {
  std::vector<SimDuration> starts;
  starts.reserve(static_cast<std::size_t>(std::max(n, 0)));
  for (int i = 0; i < n; ++i) {
    starts.push_back(n > 1 ? ramp * i / n : 0);
  }
  return starts;
}

}  // namespace mar::expt
