// Sliding-window SLO evaluation with edge-triggered state reporting.
//
// The watchdog ingests delivered frames (timestamp, E2E latency,
// success) and, on each evaluate() tick, recomputes the window's
// achieved FPS and E2E p99 against the configured targets. State
// changes — healthy -> violating and back — are edge-triggered: each
// transition emits one structured MAR_WARN/MAR_INFO log line and bumps
// a transition counter, so a log scraper sees exactly one event per
// incident instead of one per evaluation tick. Current state is also
// exported as registry gauges (mar_slo_violation{scope,slo}) for the
// /metrics plane.
//
// Time is caller-supplied SimTime nanoseconds, so the same watchdog
// works over virtual time in the simulator and wall-clock time
// (trace_wallclock_now()) in live runs.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/time.h"
#include "telemetry/registry.h"

namespace mar::expt {

struct SloTargets {
  double min_fps = 0.0;         // per-client successful FPS; 0 disables
  double max_e2e_p99_ms = 0.0;  // E2E latency p99 over the window; 0 disables
  SimDuration window = seconds(5.0);
  // Evaluations before the window first fills are skipped (no flapping
  // on startup); set to 0 to evaluate immediately.
  SimDuration warmup = seconds(1.0);
};

class SloWatchdog {
 public:
  // `scope` labels the exported gauges and log lines (e.g. "pipeline",
  // "client_3"). `clients` divides aggregate window FPS into the
  // per-client figure the targets are expressed in.
  SloWatchdog(SloTargets targets, std::string scope = "pipeline", int clients = 1);

  // Record one delivered frame (successful or failed) at time `t`.
  void observe_frame(SimTime t, double e2e_ms, bool success);

  // Re-evaluate targets over [t - window, t]; returns the new state
  // (true = violating). Logs and counts on state change only.
  bool evaluate(SimTime t);

  [[nodiscard]] bool violating() const { return violating_; }
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }
  // Entered-violation edges only (transitions() counts both directions).
  [[nodiscard]] std::uint64_t violations_entered() const { return violations_entered_; }
  [[nodiscard]] double window_fps() const { return window_fps_; }
  [[nodiscard]] double window_p99_ms() const { return window_p99_ms_; }
  [[nodiscard]] const SloTargets& targets() const { return targets_; }

 private:
  struct Frame {
    SimTime t;
    double e2e_ms;
    bool success;
  };

  void trim(SimTime t);
  void set_state(bool violating, SimTime t, const std::string& reason);

  SloTargets targets_;
  std::string scope_;
  int clients_;
  std::deque<Frame> frames_;
  SimTime first_observation_ = -1;

  bool violating_ = false;
  std::uint64_t transitions_ = 0;
  std::uint64_t violations_entered_ = 0;
  double window_fps_ = 0.0;
  double window_p99_ms_ = 0.0;

  telemetry::Gauge& fps_violation_gauge_;
  telemetry::Gauge& latency_violation_gauge_;
  telemetry::Gauge& window_fps_gauge_;
  telemetry::Gauge& window_p99_gauge_;
  telemetry::Counter& transition_counter_;
};

}  // namespace mar::expt
