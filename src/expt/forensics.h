// Frame forensics: reconstruct one frame's hop-by-hop timeline from
// recorded trace events.
//
// Input is either the live Tracer ring (from_tracer()) or an event log
// written by Tracer::write_event_log() and read back with
// load_trace_log() — the format the frame_forensics CLI consumes. The
// reconstruction pairs begin/end spans per {track, name, stage}, keeps
// kComplete spans and instants as-is, and derives the frame's verdict:
// a delivered result (frame_e2e closed), a terminal drop/loss instant,
// or an incomplete timeline (the run ended mid-flight). The synthetic
// `retained` instant, when present, names why tail retention kept the
// trace.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/trace.h"

namespace mar::expt {

// A trace snapshot with stable storage for event-name strings (the
// Tracer stores static `const char*` names; a log read back from disk
// needs to own them).
struct TraceLog {
  std::vector<telemetry::TraceEvent> events;
  std::unordered_map<std::uint32_t, std::string> track_names;
  // Backing store for names of parsed events; deque keeps pointers
  // stable as it grows.
  std::deque<std::string> name_storage;

  [[nodiscard]] std::string track_label(std::uint32_t track) const {
    auto it = track_names.find(track);
    return it == track_names.end() ? "track#" + std::to_string(track) : it->second;
  }
};

// Snapshot the live Tracer (events + track names).
[[nodiscard]] TraceLog from_tracer(const telemetry::Tracer& tracer);

// Parse a "# mar-trace-events v1" log. Returns std::nullopt when the
// file cannot be read or the header is wrong; unparseable lines are
// skipped.
[[nodiscard]] std::optional<TraceLog> load_trace_log(const std::string& path);
[[nodiscard]] std::optional<TraceLog> parse_trace_log(const std::string& text);

// One reconstructed hop of a frame's journey.
struct TimelineHop {
  SimTime start = 0;  // ns
  SimTime end = 0;    // ns; == start for instants and unmatched begins
  std::string track;  // resolved track label
  std::string name;   // span/event name
  Stage stage = Stage::kPrimary;
  telemetry::TracePhase phase = telemetry::TracePhase::kInstant;
  double value = 0.0;
  bool open = false;  // begin with no matching end (clipped/in-flight)

  [[nodiscard]] double dur_ms() const { return to_millis(end - start); }
};

struct FrameTimeline {
  std::uint32_t trace_id = 0;
  std::uint32_t client = 0;
  std::uint64_t frame = 0;
  SimTime capture_ts = 0;  // first event of the frame
  SimTime last_ts = 0;     // last event (verdict time)
  // "result", a terminal drop name ("drop_stale", "pkt_loss", ...), or
  // "incomplete" when the timeline has neither.
  std::string verdict = "incomplete";
  // Why tail retention kept this trace (kNone when the frame was
  // head-sampled straight into the durable ring).
  telemetry::RetainReason retain_reason = telemetry::RetainReason::kNone;
  std::vector<TimelineHop> hops;  // sorted by start time

  [[nodiscard]] double span_ms() const { return to_millis(last_ts - capture_ts); }
  [[nodiscard]] bool complete() const { return verdict != "incomplete"; }
};

// Rebuild the timeline of one traced frame. nullopt when the log holds
// no events for `trace_id`.
[[nodiscard]] std::optional<FrameTimeline> reconstruct_frame(const TraceLog& log,
                                                             std::uint32_t trace_id);

// Annotated text timeline plus a per-hop budget table.
[[nodiscard]] std::string render_timeline(const FrameTimeline& tl);

// Trace ids ranked by capture-to-verdict span, widest first (ids whose
// frames never produced any event are absent by construction).
[[nodiscard]] std::vector<std::uint32_t> worst_trace_ids(const TraceLog& log,
                                                         std::size_t n);
// Trace ids whose timeline ends in a terminal drop/loss instant, in
// first-seen order.
[[nodiscard]] std::vector<std::uint32_t> dropped_trace_ids(const TraceLog& log);
// Every trace id present in the log, in first-seen order.
[[nodiscard]] std::vector<std::uint32_t> all_trace_ids(const TraceLog& log);

}  // namespace mar::expt
