// Machine-readable experiment exports (CSV / JSON) so results can be
// plotted or diffed outside the harness.
#pragma once

#include <string>

#include "expt/experiment.h"

namespace mar::expt {

// One CSV row per service replica plus a client-QoS header block.
[[nodiscard]] std::string to_csv(const ExperimentResult& result);

// Compact JSON object with QoS, per-service, and per-machine sections.
[[nodiscard]] std::string to_json(const ExperimentResult& result);

// Write either format based on the path suffix (.csv / .json).
bool write_report(const ExperimentResult& result, const std::string& path);

}  // namespace mar::expt
