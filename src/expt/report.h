// Machine-readable experiment exports (CSV / JSON) so results can be
// plotted or diffed outside the harness.
#pragma once

#include <string>

#include "expt/experiment.h"
#include "telemetry/profiler.h"

namespace mar::expt {

// One CSV row per service replica plus a client-QoS header block.
[[nodiscard]] std::string to_csv(const ExperimentResult& result);

// Compact JSON object with QoS, per-service, and per-machine sections.
[[nodiscard]] std::string to_json(const ExperimentResult& result);

// Prometheus plaintext exposition: the same result as labeled gauges
// (mar_fps, mar_e2e_ms, mar_service_ms{stage=...,replica=...}, ...),
// scrapeable or diffable next to the Tracer's span-derived metrics.
[[nodiscard]] std::string to_prometheus(const ExperimentResult& result);

// Write a format based on the path suffix (.csv / .json / .prom).
bool write_report(const ExperimentResult& result, const std::string& path);

// Profiling artifacts for a finished run, written next to the report:
//   <prefix>.folded          — collapsed stacks, flamegraph.pl-ready
//   <prefix>.speedscope.json — https://speedscope.app "sampled" profile
//   <prefix>.heap.folded     — allocation attribution (stage bytes/calls)
// The heap file is only written when the allocation report is
// non-empty. `name` labels the speedscope profile tab.
bool write_profile_artifacts(const telemetry::ProfileReport& profile,
                             const telemetry::AllocReport& allocs,
                             const std::string& prefix, const std::string& name);

}  // namespace mar::expt
