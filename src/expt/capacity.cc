#include "expt/capacity.h"

#include <algorithm>
#include <cmath>

#include "telemetry/registry.h"

namespace mar::expt {
namespace {

// Pool units per GPU kernel slot: fluid cohorts negotiate fractional
// slot shares at this granularity while detailed frames take whole
// slots, on the same ResourcePool.
constexpr std::uint32_t kUnitsPerSlot = 1000;

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

struct CapacityCounters {
  telemetry::Counter& fluid_frames;
  telemetry::Gauge& sessions;
};

CapacityCounters& capacity_counters() {
  auto& reg = telemetry::MetricRegistry::instance();
  static CapacityCounters c{
      reg.counter("mar_capacity_fluid_frames_total",
                  "Frames served by the fluid cohort tail of capacity runs"),
      reg.gauge("mar_capacity_active_sessions",
                "Concurrent fluid sessions across all capacity partitions"),
  };
  return c;
}

}  // namespace

// Per-machine partition state. Everything here is written either by
// the thread running this partition's window or by the coordinator at
// the window barrier — never both within one window.
struct CapacityEngine::Partition {
  hw::ResourcePool pool;
  hw::MemoryAccount memory;
  sim::ClientCohort cohort;
  std::uint32_t held = 0;          // pool units the cohort currently holds
  std::uint64_t cohort_mem = 0;    // bytes currently booked for the cohort
  std::uint64_t digest = kFnvOffset;
  std::uint64_t dropped_busy = 0;   // scAtteR drop-when-busy losses
  std::uint64_t dropped_stale = 0;  // scAtteR++ dequeue staleness drops
  double fluid_frames_acc = 0.0;    // served fluid frames not yet counted
  double meas_start_busy = 0.0;     // pool busy integral at warmup end
  double last_busy = 0.0;           // ... at the previous timeline sample
  SimTime last_sample_t = 0;
  double mem_integral = 0.0;        // ∫ used dt over the measurement window
  double sessions_integral = 0.0;   // ∫ active dt over the measurement window
  CapacityMachineReport report;

  Partition(sim::EventLoop& loop, std::uint32_t capacity_units, std::uint64_t memory_bytes,
            sim::CohortConfig cohort_config)
      : pool(loop, capacity_units), memory(loop, memory_bytes), cohort(cohort_config) {}
};

// A detailed per-frame probe client. Frame generation, RNG draws, and
// stats all live in the home partition; the serving partition only ever
// sees pre-sampled durations.
struct CapacityEngine::ProbeClient {
  std::uint32_t idx = 0;
  int home = 0;
  int serve = 0;
  double fps = 25.0;
  SimDuration interval = 0;
  SimTime next_t = 0;
  std::uint64_t frame_counter = 0;
  Rng rng{0};
  std::uint64_t delivered = 0;  // frames whose outcome reached the client
  std::uint64_t successes = 0;  // delivered within the latency budget
  double e2e_sum_ms = 0.0;      // over successful frames
  std::vector<double> e2e_ms;   // per-success samples (for the p99)
};

CapacityEngine::CapacityEngine(CapacityConfig config) : config_(std::move(config)) {}
CapacityEngine::~CapacityEngine() = default;

std::uint64_t CapacityEngine::session_memory_bytes(const CapacityConfig& config,
                                                   core::PipelineMode mode) {
  if (mode == core::PipelineMode::kScatterPP) {
    return config.costs.sidecar_client_buffer_bytes;
  }
  // Stateful sift retains one state entry per frame for state_timeout:
  // a 25 FPS session pins fps * timeout entries at steady state.
  const double entries = config.target_fps * to_seconds(config.costs.state_timeout);
  return static_cast<std::uint64_t>(entries *
                                    static_cast<double>(config.costs.state_entry_bytes));
}

SimDuration CapacityEngine::frame_gpu_time(const CapacityConfig& config) {
  double total = 0.0;
  for (int s = 0; s < kNumStages; ++s) {
    total += static_cast<double>(config.costs.stage(static_cast<Stage>(s)).gpu_time);
  }
  const double speed =
      config.machine_spec.gpus.empty() ? 1.0 : config.machine_spec.gpus[0].speed_factor;
  return static_cast<SimDuration>(total / std::max(speed, 1e-9));
}

void CapacityEngine::build() {
  if (built_) return;
  built_ = true;
  population_ = std::make_unique<PopulationModel>(config_.population, config_.seed + 0x5eed);
  engine_ = std::make_unique<sim::PartitionedEngine>(config_.machines, config_.cross_latency);
  frame_gpu_time_ = frame_gpu_time(config_);
  service_cv_ = config_.costs.stage(Stage::kSift).noise_cv;
  t_end_ = config_.warmup + config_.duration;
  next_sample_ = config_.warmup + config_.timeline_interval;

  std::uint32_t slots = 0;
  for (const auto& g : config_.machine_spec.gpus) slots += g.slots;
  pool_capacity_units_ = std::max<std::uint32_t>(slots, 1) * kUnitsPerSlot;

  sim::CohortConfig cc;
  cc.target_fps = population_->mean_session_fps();
  cc.service_time = frame_gpu_time_;
  cc.session_mean_s = config_.population.session_mean_s;
  cc.memory_per_session = session_memory_bytes(config_, config_.mode);

  const int P = config_.machines;
  parts_.reserve(static_cast<std::size_t>(P));
  for (int p = 0; p < P; ++p) {
    parts_.push_back(std::make_unique<Partition>(engine_->loop(p), pool_capacity_units_,
                                                 config_.machine_spec.memory_bytes, cc));
    parts_.back()->report.name =
        config_.machine_spec.name + "#" + std::to_string(p);
  }

  // Probe clients. With an explicit probe_set the layout is the
  // caller's; otherwise synthesize the legacy layout — homes
  // round-robin across machines, device classes stratified over the
  // mix, roaming spread evenly (Bresenham) so any prefix of clients
  // has ~roaming_fraction roamers. The RNG fork order is identical in
  // both paths, so an empty probe_set reproduces historical digests
  // bit for bit.
  Rng master(config_.seed);
  const auto& mix = population_->mix();
  const std::uint64_t session_bytes = session_memory_bytes(config_, config_.mode);
  std::vector<CapacityProbeSpec> specs = config_.probe_set;
  if (specs.empty()) {
    const int n = config_.detailed_clients;
    specs.reserve(static_cast<std::size_t>(std::max(n, 0)));
    for (int i = 0; i < n; ++i) {
      CapacityProbeSpec spec;
      spec.home = i % P;
      const double f = std::clamp(config_.roaming_fraction, 0.0, 1.0);
      const bool roams = P > 1 && std::floor((i + 1) * f) > std::floor(i * f);
      spec.serve = roams ? (spec.home + 1) % P : spec.home;
      const double u = (i + 0.5) / n;
      double cum = 0.0;
      spec.fps = mix.empty() ? config_.target_fps : mix.back().fps;
      for (const DeviceClass& d : mix) {
        cum += d.weight;
        if (u < cum) {
          spec.fps = d.fps;
          break;
        }
      }
      specs.push_back(spec);
    }
  } else {
    for (CapacityProbeSpec& spec : specs) {
      spec.home = std::clamp(spec.home, 0, P - 1);
      spec.serve = std::clamp(spec.serve, 0, P - 1);
      if (spec.fps <= 0.0) spec.fps = config_.target_fps;
    }
  }
  probes_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    auto c = std::make_unique<ProbeClient>();
    c->idx = static_cast<std::uint32_t>(i);
    c->home = specs[i].home;
    c->serve = specs[i].serve;
    c->fps = specs[i].fps;
    c->interval = static_cast<SimDuration>(static_cast<double>(kSecond) / c->fps);
    c->rng = master.fork();
    c->next_t = static_cast<SimTime>(c->rng.uniform(0.0, static_cast<double>(c->interval)));
    parts_[static_cast<std::size_t>(c->serve)]->memory.allocate(session_bytes);
    probes_.push_back(std::move(c));
  }
  for (auto& c : probes_) schedule_frame(*c);
}

void CapacityEngine::schedule_frame(ProbeClient& c) {
  if (c.next_t >= t_end_) return;
  const SimTime t = c.next_t;
  c.next_t += c.interval;
  ProbeClient* pc = &c;
  engine_->loop(c.home).schedule_at(t, [this, pc] {
    const SimTime born = engine_->loop(pc->home).now();
    // All randomness for the frame is drawn here, in the home
    // partition, so the serving side runs on pre-sampled durations.
    const SimDuration service =
        hw::CostModel::sample(frame_gpu_time_, service_cv_, pc->rng);
    const std::uint64_t frame = pc->frame_counter++;
    const std::uint32_t idx = pc->idx;
    const int home = pc->home;
    const int serve = pc->serve;
    const SimTime at_edge = born + config_.access_latency;
    if (serve == home) {
      engine_->loop(home).schedule_at(at_edge, [this, serve, born, service, idx, frame, home] {
        begin_service(serve, born, service, idx, frame, home);
      });
    } else if (config_.mode == core::PipelineMode::kScatter) {
      // Stateful pipeline: the roaming client's session state lives on
      // its home sift, so serving elsewhere first pays a state-fetch
      // round trip (serve -> home -> serve) before touching the GPU.
      engine_->post(home, serve, at_edge + config_.cross_latency,
                    [this, serve, born, service, idx, frame, home] {
                      const SimTime now = engine_->loop(serve).now();
                      engine_->post(
                          serve, home, now + config_.cross_latency,
                          [this, serve, born, service, idx, frame, home] {
                            engine_->loop(home).schedule_after(
                                config_.costs.state_fetch_cpu,
                                [this, serve, born, service, idx, frame, home] {
                                  const SimTime n2 = engine_->loop(home).now();
                                  engine_->post(home, serve, n2 + config_.cross_latency,
                                                [this, serve, born, service, idx, frame,
                                                 home] {
                                                  begin_service(serve, born, service, idx,
                                                                frame, home);
                                                });
                                });
                          });
                    });
    } else {
      engine_->post(home, serve, at_edge + config_.cross_latency,
                    [this, serve, born, service, idx, frame, home] {
                      begin_service(serve, born, service, idx, frame, home);
                    });
    }
    schedule_frame(*pc);
  });
}

void CapacityEngine::begin_service(int part, SimTime born, SimDuration service,
                                   std::uint32_t client_idx, std::uint64_t frame_idx,
                                   int home) {
  Partition& P = *parts_[static_cast<std::size_t>(part)];
  auto run_and_deliver = [this, part, born, service, client_idx, frame_idx, home]() {
    engine_->loop(part).schedule_after(
        service, [this, part, born, client_idx, frame_idx, home] {
          parts_[static_cast<std::size_t>(part)]->pool.release(kUnitsPerSlot);
          const auto deliver = [this, born, client_idx, frame_idx, home] {
            engine_->loop(home).schedule_after(
                config_.access_latency, [this, born, client_idx, frame_idx, home] {
                  finish_frame(home, client_idx, frame_idx, born, /*served=*/true);
                });
          };
          if (part == home) {
            deliver();
          } else {
            const SimTime now = engine_->loop(part).now();
            engine_->post(part, home, now + config_.cross_latency, deliver);
          }
        });
  };

  if (config_.mode == core::PipelineMode::kScatter) {
    // Drop-when-busy ingress: no queue in front of the GPUs.
    const std::uint32_t got = P.pool.try_acquire(kUnitsPerSlot);
    if (got < kUnitsPerSlot) {
      if (got > 0) P.pool.release(got);
      ++P.dropped_busy;
      const auto notify = [this, born, client_idx, frame_idx, home] {
        engine_->loop(home).schedule_after(
            config_.access_latency, [this, born, client_idx, frame_idx, home] {
              finish_frame(home, client_idx, frame_idx, born, /*served=*/false);
            });
      };
      if (part == home) {
        notify();
      } else {
        const SimTime now = engine_->loop(part).now();
        engine_->post(part, home, now + config_.cross_latency, notify);
      }
      return;
    }
    run_and_deliver();
    return;
  }

  // scAtteR++: sidecar hand-off, FIFO queue for a slot, staleness check
  // at dequeue (a frame that waited past the XR budget is stale and not
  // worth GPU time).
  engine_->loop(part).schedule_after(
      config_.costs.sidecar_rpc_overhead,
      [this, part, born, client_idx, frame_idx, home, run_and_deliver] {
        Partition& S = *parts_[static_cast<std::size_t>(part)];
        S.pool.acquire(kUnitsPerSlot, [this, part, born, client_idx, frame_idx, home,
                                       run_and_deliver] {
          Partition& Q = *parts_[static_cast<std::size_t>(part)];
          const SimTime now = engine_->loop(part).now();
          if (now - born > config_.costs.sidecar_threshold) {
            // Defer the release one event: releasing inline would grant
            // the next waiter from inside this grant, and a run of
            // consecutive stale frames would drain the queue as real
            // stack recursion.
            engine_->loop(part).schedule_after(0, [this, part] {
              parts_[static_cast<std::size_t>(part)]->pool.release(kUnitsPerSlot);
            });
            ++Q.dropped_stale;
            const auto notify = [this, born, client_idx, frame_idx, home] {
              engine_->loop(home).schedule_after(
                  config_.access_latency, [this, born, client_idx, frame_idx, home] {
                    finish_frame(home, client_idx, frame_idx, born, /*served=*/false);
                  });
            };
            if (part == home) {
              notify();
            } else {
              engine_->post(part, home, now + config_.cross_latency, notify);
            }
            return;
          }
          run_and_deliver();
        });
      });
}

void CapacityEngine::finish_frame(int home, std::uint32_t client_idx,
                                  std::uint64_t frame_idx, SimTime born, bool served) {
  Partition& H = *parts_[static_cast<std::size_t>(home)];
  const SimTime now = engine_->loop(home).now();
  const bool success = served && (now - born) <= config_.costs.sidecar_threshold;
  H.digest = fnv_mix(H.digest, client_idx);
  H.digest = fnv_mix(H.digest, frame_idx);
  H.digest = fnv_mix(H.digest, static_cast<std::uint64_t>(now));
  H.digest = fnv_mix(H.digest, success ? 1 : 0);
  if (born < config_.warmup) return;
  ProbeClient& c = *probes_[client_idx];
  ++c.delivered;
  if (success) {
    ++c.successes;
    c.e2e_sum_ms += to_millis(now - born);
    c.e2e_ms.push_back(to_millis(now - born));
  }
}

void CapacityEngine::on_window(SimTime wstart, SimTime wend) {
  const double dt = to_seconds(wend - wstart);
  if (!measuring_ && wend >= config_.warmup) {
    measuring_ = true;
    meas_start_ = wend;
    for (auto& part : parts_) {
      part->meas_start_busy = part->pool.busy_integral();
      part->last_busy = part->meas_start_busy;
      part->last_sample_t = wend;
    }
  }
  const bool fluid = config_.population.mean_population > 0.0;
  const double rate_per_machine =
      fluid ? population_->arrival_rate((wstart + wend) / 2) / config_.machines : 0.0;
  const double slot_rate =
      static_cast<double>(kSecond) / static_cast<double>(frame_gpu_time_);
  double total_sessions = 0.0;
  double fluid_frames_delta = 0.0;
  for (auto& part : parts_) {
    Partition& P = *part;
    if (fluid) {
      // Renegotiate the cohort's slice: hand everything back first —
      // release() drains any frame-level waiters before the cohort
      // re-acquires, so detailed probes always outrank the fluid tail.
      if (P.held > 0) {
        P.pool.release(P.held);
        P.held = 0;
      }
      const double projected =
          P.cohort.active_sessions() + rate_per_machine * dt * 0.5;
      const double demand_slots =
          projected * P.cohort.config().target_fps / slot_rate;
      const auto want = static_cast<std::uint32_t>(
          std::min(demand_slots * kUnitsPerSlot + 0.5,
                   static_cast<double>(pool_capacity_units_)));
      if (want > 0) P.held = P.pool.try_acquire(want);
      const sim::CohortWindow w = P.cohort.advance(
          wend - wstart, rate_per_machine,
          static_cast<double>(P.held) / static_cast<double>(kUnitsPerSlot));
      P.fluid_frames_acc += w.served_fps * dt;
      fluid_frames_delta += w.served_fps * dt;
      if (measuring_ && wstart >= config_.warmup) {
        fluid_fps_weighted_ += w.session_fps * w.active * dt;
        fluid_session_weight_ += w.active * dt;
      }
      // Book the cohort's resident state (sift entries / sidecar
      // buffers) against the machine's memory account.
      const std::uint64_t mem = P.cohort.memory_bytes();
      if (mem > P.cohort_mem) {
        P.memory.allocate(mem - P.cohort_mem);
      } else if (mem < P.cohort_mem) {
        P.memory.free(P.cohort_mem - mem);
      }
      P.cohort_mem = mem;
      total_sessions += w.active;
    }
    if (measuring_ && wstart >= config_.warmup) {
      P.mem_integral += static_cast<double>(P.memory.used()) * dt;
      P.sessions_integral += P.cohort.active_sessions() * dt;
    }
  }
  if (fluid) {
    auto& counters = capacity_counters();
    counters.sessions.set(total_sessions);
    if (fluid_frames_delta >= 1.0) {
      counters.fluid_frames.inc(static_cast<std::uint64_t>(fluid_frames_delta));
    }
  }
  if (config_.timeline_interval > 0 && measuring_ && wend >= next_sample_) {
    const double span = to_seconds(wend - parts_[0]->last_sample_t);
    for (auto& part : parts_) {
      Partition& P = *part;
      const double busy = P.pool.busy_integral();
      CapacityTimelinePoint pt;
      pt.t_s = to_seconds(wend - config_.warmup);
      pt.gpu = span > 0.0 ? (busy - P.last_busy) /
                                (span * static_cast<double>(kSecond) *
                                 static_cast<double>(pool_capacity_units_))
                          : 0.0;
      pt.mem_gb = static_cast<double>(P.memory.used()) / (1024.0 * 1024.0 * 1024.0);
      pt.sessions = P.cohort.active_sessions();
      P.report.timeline.push_back(pt);
      P.last_busy = busy;
      P.last_sample_t = wend;
    }
    next_sample_ += config_.timeline_interval;
  }
}

CapacityResult CapacityEngine::run(int threads) {
  build();
  if (!ran_) {
    ran_ = true;
    engine_->run_until(t_end_, threads,
                       [this](SimTime a, SimTime b) { on_window(a, b); });
  }

  CapacityResult r;
  r.mode = to_string(config_.mode);
  r.machines = config_.machines;
  r.detailed_clients = static_cast<int>(probes_.size());
  r.duration_s = to_seconds(config_.duration);
  const double meas_s = to_seconds(t_end_ - meas_start_);

  double fps_sum = 0.0;
  double target_sum = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t successes = 0;
  double e2e_sum = 0.0;
  for (const auto& c : probes_) {
    fps_sum += meas_s > 0.0 ? static_cast<double>(c->successes) / meas_s : 0.0;
    target_sum += c->fps;
    delivered += c->delivered;
    successes += c->successes;
    e2e_sum += c->e2e_sum_ms;
  }
  r.detailed_fps_mean = probes_.empty() ? 0.0 : fps_sum / static_cast<double>(probes_.size());
  r.detailed_target_fps_mean =
      probes_.empty() ? 0.0 : target_sum / static_cast<double>(probes_.size());
  r.detailed_success_rate =
      delivered > 0 ? static_cast<double>(successes) / static_cast<double>(delivered) : 0.0;
  r.detailed_e2e_ms_mean = successes > 0 ? e2e_sum / static_cast<double>(successes) : 0.0;
  std::vector<double> e2e_all;
  e2e_all.reserve(successes);
  for (const auto& c : probes_) {
    e2e_all.insert(e2e_all.end(), c->e2e_ms.begin(), c->e2e_ms.end());
  }
  if (!e2e_all.empty()) {
    const auto rank = static_cast<std::size_t>(
        0.99 * static_cast<double>(e2e_all.size() - 1) + 0.5);
    std::nth_element(e2e_all.begin(),
                     e2e_all.begin() + static_cast<std::ptrdiff_t>(rank), e2e_all.end());
    r.detailed_e2e_p99_ms = e2e_all[rank];
  }

  r.fluid_session_fps =
      fluid_session_weight_ > 0.0 ? fluid_fps_weighted_ / fluid_session_weight_ : 0.0;
  r.fluid_target_fps = population_ ? population_->mean_session_fps() : 0.0;
  double sessions_mean_total = 0.0;
  std::uint64_t digest = kFnvOffset;
  for (const auto& part : parts_) {
    const Partition& P = *part;
    r.fluid_frames_served += P.fluid_frames_acc;
    digest = fnv_mix(digest, P.digest);
    CapacityMachineReport rep = P.report;
    const double cap_ns = static_cast<double>(pool_capacity_units_) *
                          static_cast<double>(kSecond) * (meas_s > 0.0 ? meas_s : 1.0);
    rep.gpu_util = meas_s > 0.0 ? (P.pool.busy_integral() - P.meas_start_busy) / cap_ns : 0.0;
    rep.mem_gb_mean =
        meas_s > 0.0 ? P.mem_integral / meas_s / (1024.0 * 1024.0 * 1024.0) : 0.0;
    rep.fluid_sessions_mean = meas_s > 0.0 ? P.sessions_integral / meas_s : 0.0;
    sessions_mean_total += rep.fluid_sessions_mean;
    r.machine_reports.push_back(std::move(rep));
  }
  r.fluid_sessions_mean = sessions_mean_total;
  r.digest = digest;
  r.events_fired = engine_->events_fired();
  r.messages_posted = engine_->messages_posted();
  r.lookahead_violations = engine_->lookahead_violations();
  r.windows_run = engine_->windows_run();
  return r;
}

CapacityPlan CapacityEngine::plan_machines(const CapacityConfig& config,
                                           double min_fraction) {
  CapacityPlan plan;
  plan.mode = to_string(config.mode);
  const std::uint64_t session_bytes = session_memory_bytes(config, config.mode);
  const int memory_bound =
      session_bytes > 0
          ? static_cast<int>(std::min<std::uint64_t>(
                config.machine_spec.memory_bytes / session_bytes, 100000))
          : 100000;
  plan.memory_bound_clients = memory_bound;

  // Walk the density up on a single detailed-only box until the SLO
  // (min_fraction of target FPS and of frame successes) breaks.
  const int cap = std::min(64, memory_bound);
  for (int n = 1; n <= cap; ++n) {
    CapacityConfig probe = config;
    probe.machines = 1;
    probe.detailed_clients = n;
    probe.roaming_fraction = 0.0;
    probe.population.mean_population = 0.0;
    probe.population.device_mix = {DeviceClass{"plan", config.target_fps, 1.0}};
    probe.warmup = seconds(2.0);
    probe.duration = seconds(20.0);
    probe.timeline_interval = 0;
    CapacityEngine engine(probe);
    const CapacityResult r = engine.run(1);
    if (r.detailed_fps_mean < min_fraction * config.target_fps ||
        r.detailed_success_rate < min_fraction) {
      break;
    }
    plan.gpu_bound_clients = n;
    plan.fps_at_plan = r.detailed_fps_mean;
    plan.success_at_plan = r.detailed_success_rate;
  }
  plan.clients_per_box = plan.gpu_bound_clients;
  plan.binding_constraint =
      plan.clients_per_box >= memory_bound ? "memory" : "gpu";
  plan.machines_per_100k =
      plan.clients_per_box > 0
          ? static_cast<int>((100000 + plan.clients_per_box - 1) / plan.clients_per_box)
          : 0;
  return plan;
}

}  // namespace mar::expt
