#include "expt/testbed.h"

namespace mar::expt {
namespace {
constexpr double kGbps = 1e9 / 8.0;  // bytes per second
}

sim::LinkModel TestbedConfig::default_client_e1() {
  sim::LinkModel m = sim::LinkModel::with_rtt(millis(1.0), /*loss=*/0.0, 1.0 * kGbps);
  m.jitter_stddev = micros(50.0);
  return m;
}

sim::LinkModel TestbedConfig::default_e1_e2() {
  sim::LinkModel m = sim::LinkModel::with_rtt(millis(3.0), /*loss=*/0.0, 10.0 * kGbps);
  m.jitter_stddev = micros(150.0);
  return m;
}

sim::LinkModel TestbedConfig::default_client_cloud() {
  // Per-datagram Internet loss; frames fragment into ~180 packets, so
  // 0.2% packet loss loses ~30% of 250 KB frames — the cloud success
  // rate the paper reports (64%) without any hardware bottleneck.
  sim::LinkModel m = sim::LinkModel::with_rtt(millis(15.0), /*loss=*/0.002, 1.0 * kGbps);
  // Paper: "slightly higher jitter ... latency fluctuations between
  // client(s) and the cloud machine".
  m.jitter_stddev = millis(1.2);
  return m;
}

sim::LinkModel TestbedConfig::default_edge_cloud() {
  // Public Internet path between the edge LAN and AWS: modest
  // per-packet loss plus a shared ~150 Mbps bottleneck. The hybrid
  // deployment (§A.1.2) pushes 180 KB frames per client over this path,
  // saturating it and producing the bufferbloat + frame-drop collapse
  // the paper observes.
  sim::LinkModel m = sim::LinkModel::with_rtt(millis(14.0), /*loss=*/0.004, 0.075 * kGbps);
  m.max_queue_delay = millis(100.0);
  m.jitter_stddev = millis(2.0);
  return m;
}

sim::LinkModel TestbedConfig::access_custom(SimDuration rtt, double loss, bool mobility) {
  sim::LinkModel m = sim::LinkModel::with_rtt(rtt, loss, 1.0 * kGbps);
  m.jitter_stddev = micros(200.0);
  if (mobility) {
    m.oscillation_delay = millis(10.0);
    m.oscillation_prob = 0.20;
  }
  return m;
}

sim::LinkModel TestbedConfig::access_lte() { return access_custom(millis(40.0), 0.0008); }
sim::LinkModel TestbedConfig::access_5g() { return access_custom(millis(10.0), 0.0001); }
sim::LinkModel TestbedConfig::access_wifi6() { return access_custom(millis(5.0), 0.0001); }

Testbed::Testbed(TestbedConfig config) : config_(config), rng_(config.seed) {
  network_ = std::make_unique<sim::SimNetwork>(loop_, rng_.fork());
  runtime_ = std::make_unique<dsp::SimRuntime>(loop_, *network_);
  orchestrator_ = std::make_unique<orchestra::Orchestrator>(*runtime_, rng_.fork());

  e1_ = orchestrator_->add_machine(hw::MachineSpec::edge1());
  hw::MachineSpec e2_spec = hw::MachineSpec::edge2();
  if (!config_.e2_gpus.empty()) e2_spec.gpus = config_.e2_gpus;
  e2_ = orchestrator_->add_machine(std::move(e2_spec));
  cloud_ = orchestrator_->add_machine(hw::MachineSpec::cloud());
  clients_ = orchestrator_->add_machine(hw::MachineSpec::client_nuc());

  network_->set_link(clients_, e1_, config_.client_e1);
  network_->set_link(e1_, e2_, config_.e1_e2);
  network_->set_link(clients_, cloud_, config_.client_cloud);
  network_->set_link(e1_, cloud_, config_.edge_cloud);
  network_->set_link(e2_, cloud_, config_.edge_cloud);

  // Clients reach E2 through E1's LAN: access + LAN in series.
  sim::LinkModel client_e2 = config_.e1_e2;
  client_e2.latency += config_.client_e1.latency;
  client_e2.jitter_stddev += config_.client_e1.jitter_stddev;
  client_e2.loss_rate =
      1.0 - (1.0 - config_.client_e1.loss_rate) * (1.0 - config_.e1_e2.loss_rate);
  client_e2.bandwidth_bytes_per_sec = config_.client_e1.bandwidth_bytes_per_sec;
  client_e2.oscillation_delay = config_.client_e1.oscillation_delay;
  client_e2.oscillation_prob = config_.client_e1.oscillation_prob;
  network_->set_link(clients_, e2_, client_e2);
}

}  // namespace mar::expt
