// The simulated edge-cloud testbed (paper §3.2).
//
//   clients (NUCs) --(Ethernet, <=1 ms RTT)-- E1
//   E1 --(LAN, 2-4 hops, ~3 ms RTT)-- E2
//   clients/E1/E2 --(public Internet, ~15 ms RTT)-- Cloud (AWS)
//
// Link parameters are configurable so the §A.1.1 mobile-connectivity
// experiments (LTE / 5G / WiFi-6 via tc-style emulation) reuse the same
// testbed with swapped client access links.
#pragma once

#include <memory>

#include "common/rng.h"
#include "dsp/runtime.h"
#include "hw/machine.h"
#include "orchestra/orchestrator.h"
#include "sim/event_loop.h"
#include "sim/link.h"
#include "sim/network.h"

namespace mar::expt {

struct TestbedConfig {
  // Client access link to the local edge (Ethernet by default).
  sim::LinkModel client_e1 = default_client_e1();
  // Edge LAN between E1 and E2.
  sim::LinkModel e1_e2 = default_e1_e2();
  // Public Internet paths to the cloud VM.
  sim::LinkModel client_cloud = default_client_cloud();
  sim::LinkModel edge_cloud = default_edge_cloud();

  std::uint64_t seed = 42;

  // Vertical-scaling knob: overrides E2's GPU complement when
  // non-empty (the paper's §6 "hardware configurations can be extended
  // to explore vertical scalability and resource contention").
  std::vector<hw::GpuModel> e2_gpus;

  static sim::LinkModel default_client_e1();
  static sim::LinkModel default_e1_e2();
  static sim::LinkModel default_client_cloud();
  static sim::LinkModel default_edge_cloud();

  // §A.1.1 access-network presets (tc-emulated in the paper).
  static sim::LinkModel access_lte();     // 40 ms RTT, 0.08 % loss
  static sim::LinkModel access_5g();      // 10 ms RTT, 1e-5..1e-2 % loss
  static sim::LinkModel access_wifi6();   // 5 ms RTT, 1e-5..1e-2 % loss
  // Generic tc-style knob: RTT + loss + the paper's mobility emulation
  // (+10 ms oscillation with 20 % probability).
  static sim::LinkModel access_custom(SimDuration rtt, double loss, bool mobility = true);
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config = {});

  [[nodiscard]] sim::EventLoop& loop() { return loop_; }
  [[nodiscard]] sim::SimNetwork& network() { return *network_; }
  [[nodiscard]] dsp::SimRuntime& runtime() { return *runtime_; }
  [[nodiscard]] orchestra::Orchestrator& orchestrator() { return *orchestrator_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] const TestbedConfig& config() const { return config_; }

  [[nodiscard]] MachineId e1() const { return e1_; }
  [[nodiscard]] MachineId e2() const { return e2_; }
  [[nodiscard]] MachineId cloud() const { return cloud_; }
  [[nodiscard]] MachineId client_machine() const { return clients_; }

 private:
  TestbedConfig config_;
  Rng rng_;
  sim::EventLoop loop_;
  std::unique_ptr<sim::SimNetwork> network_;
  std::unique_ptr<dsp::SimRuntime> runtime_;
  std::unique_ptr<orchestra::Orchestrator> orchestrator_;
  MachineId e1_, e2_, cloud_, clients_;
};

}  // namespace mar::expt
