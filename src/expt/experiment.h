// Experiment runner: builds a testbed, deploys a pipeline, streams N
// concurrent clients, and reports the paper's metrics (§3.2): FPS, E2E
// latency, per-service latency, jitter, frame success rate, and
// normalized CPU/GPU/memory utilization per service and machine.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/frame_flow.h"
#include "expt/deployment.h"
#include "expt/retention.h"
#include "expt/slo.h"
#include "expt/testbed.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "hw/cost_model.h"
#include "telemetry/stats.h"

namespace mar::expt {

// Machine-independent placement description, resolved against a
// Testbed at run time.
enum class Site { kE1, kE2, kCloud };

[[nodiscard]] constexpr const char* to_string(Site s) {
  switch (s) {
    case Site::kE1:
      return "E1";
    case Site::kE2:
      return "E2";
    case Site::kCloud:
      return "C";
  }
  return "?";
}

struct SymbolicPlacement {
  std::array<std::vector<Site>, kNumStages> replicas;

  static SymbolicPlacement single(Site site);
  static SymbolicPlacement per_stage(const std::array<Site, kNumStages>& sites);
  // Paper's replica-count notation (fig. 3/7): base pipeline on
  // `primary_site`, extra replicas alternating onto `secondary_site`.
  static SymbolicPlacement replicated(const std::array<int, kNumStages>& counts,
                                      Site primary_site = Site::kE2,
                                      Site secondary_site = Site::kE1);

  [[nodiscard]] PlacementConfig resolve(const Testbed& tb) const;
  [[nodiscard]] std::string to_label() const;
};

struct ExperimentConfig {
  core::PipelineMode mode = core::PipelineMode::kScatter;
  // Overrides the mode's mechanism bundle (ablations).
  std::optional<core::PipelineFeatures> features;
  SymbolicPlacement placement = SymbolicPlacement::single(Site::kE1);
  int num_clients = 1;
  double client_fps = 30.0;
  // Warm-up excluded from all metrics; `duration` is the measurement
  // window (the paper runs 5-minute experiments; 60 s of simulated time
  // gives statistically equivalent steady-state numbers far faster).
  SimDuration warmup = seconds(5.0);
  SimDuration duration = seconds(60.0);
  // > 0: client i starts at i * stagger (sidecar-analytics figures).
  SimDuration client_stagger = 0;
  hw::CostModel costs = hw::CostModel::standard();
  TestbedConfig testbed;
  std::uint64_t seed = 1;
  bool monitor = false;  // enable the orchestrator's hardware monitor
  // Distributed tracing (head sampling): trace every Nth frame per
  // client when the global telemetry::Tracer is enabled (1 = every
  // frame, 0 = none). Same default as core::ClientConfig and the
  // experiment_cli --trace_sample flag (telemetry::kDefaultTraceSampleEvery).
  // Long many-client runs should sample (e.g. 8) to bound trace volume.
  std::uint32_t trace_sample_every = telemetry::kDefaultTraceSampleEvery;
  // Tail-based trace retention (strictly opt-in; unset changes nothing
  // about the run). When set, every frame is flight-recorded and
  // promoted to the durable ring only on SLO breach, drop, fault
  // window, p99 outlier, or the 1-in-N baseline. Composes with head
  // sampling: frames head sampling already traces stay durable, so a
  // retention run usually sets trace_sample_every to 0 (or a sparse N)
  // and lets the tail policy pick the interesting frames.
  std::optional<TailRetentionConfig> retention;
  // > 0: sample every machine's CPU/GPU busy integrals, resident
  // memory, and replica state bytes at this interval during the
  // measurement window, producing ExperimentResult::timelines. The
  // sampler is read-only (no RNG, no model mutation), so results are
  // bit-identical whether it runs or not.
  SimDuration utilization_sample_interval = 0;
  // When set, every delivered frame feeds an SLO watchdog (scope
  // "pipeline") and the result carries its final SloReport.
  std::optional<SloTargets> slo;
  // Extra per-delivered-frame callback (t, e2e_ms, success), invoked
  // after the SLO watchdog sees the frame. Benches use it to collect
  // timestamped latency samples (e.g. a peak-window p99) without
  // touching client internals.
  std::function<void(SimTime, double, bool)> on_frame_hook;
  // Fault plane (both strictly opt-in: leaving them unset changes
  // nothing about the run — no extra events, no extra RNG draws).
  // Faults fire at their scripted times relative to the start of the
  // measurement window.
  std::optional<fault::FaultPlan> fault_plan;
  // Heartbeat-driven failure detection + respawn in the orchestrator.
  std::optional<orchestra::FailoverConfig> failover;
};

struct ServiceReport {
  Stage stage = Stage::kPrimary;
  int replica_index = 0;
  std::string machine;
  double service_ms_mean = 0.0;  // per-frame processing latency
  double queue_ms_mean = 0.0;    // sidecar queueing delay (scAtteR++)
  double mem_gb_mean = 0.0;      // resident memory attributed to the replica
  double cpu_share = 0.0;        // busy CPU time / (window * machine cores)
  double gpu_share = 0.0;        // busy GPU time / (window * machine GPUs)
  double drop_ratio = 0.0;
  std::uint64_t received = 0;
  double ingress_fps = 0.0;
};

struct MachineReport {
  std::string name;
  double cpu_util = 0.0;
  double gpu_util = 0.0;
  double mem_gb_mean = 0.0;
  double cpu_peak = 0.0;     // peak cores in use / capacity over the window
  double mem_gb_peak = 0.0;  // high-water resident memory
};

// One sample of a machine's utilization timeline: CPU/GPU values are
// interval means (busy-integral deltas), memory is the instantaneous
// level at sample time.
struct UtilizationPoint {
  double t_s = 0.0;  // seconds since the measurement window started
  double cpu = 0.0;
  double gpu = 0.0;
  double mem_gb = 0.0;
  double state_gb = 0.0;  // app/state bytes of replicas on this machine
};

struct MachineTimeline {
  std::string machine;
  std::vector<UtilizationPoint> points;
};

// Final state of the run's SLO watchdog (ExperimentConfig::slo).
struct SloReport {
  bool enabled = false;
  bool violating = false;
  std::uint64_t transitions = 0;
  std::uint64_t violations_entered = 0;
  double window_fps = 0.0;
  double window_p99_ms = 0.0;
};

// What the fault plane did to the run (counted over the measurement
// window, dead replicas included).
struct FaultReport {
  bool enabled = false;           // a plan was armed or failover was on
  std::uint64_t injected = 0;     // faults fired by the injector
  std::uint64_t suspected = 0;    // replicas evicted after missed heartbeats
  std::uint64_t respawns = 0;     // replacements placed on surviving machines
  std::uint64_t routing_failures = 0;  // resolve() found zero live replicas
  std::uint64_t state_lost = 0;        // sift store entries dropped by crashes
  std::uint64_t fetch_timeouts = 0;    // frames failed waiting on fetched state
  std::uint64_t fetch_retries = 0;     // state-fetch retry attempts
  std::uint64_t tx_suppressed = 0;     // sends swallowed by dead replicas
  std::uint64_t tx_unroutable = 0;     // sends failed for lack of a next hop
};

struct ExperimentResult {
  double fps_mean = 0.0;    // per-client successful FPS, mean over clients
  double fps_median = 0.0;  // median over clients
  double e2e_ms_mean = 0.0;
  double e2e_ms_median = 0.0;
  double e2e_ms_p95 = 0.0;
  double success_rate = 0.0;
  double jitter_ms = 0.0;
  std::vector<double> per_client_fps;
  std::vector<ServiceReport> services;
  std::vector<MachineReport> machines;
  // Populated when ExperimentConfig::utilization_sample_interval > 0.
  std::vector<MachineTimeline> timelines;
  SloReport slo;
  FaultReport fault;
  // Populated (enabled=true) only when ExperimentConfig::retention set.
  RetentionReport retention;

  // Sum of a per-service metric across replicas of `stage`.
  [[nodiscard]] double stage_mem_gb(Stage stage) const;
  [[nodiscard]] double stage_cpu_share(Stage stage) const;
  [[nodiscard]] double stage_gpu_share(Stage stage) const;
  [[nodiscard]] double stage_service_ms(Stage stage) const;  // mean over replicas
  [[nodiscard]] double stage_drop_ratio(Stage stage) const;  // weighted by received
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);
  ~Experiment();

  // Construct the testbed, deployment, and clients without advancing
  // the clock — lets callers schedule custom events (failure
  // injection, scaling actions) before the run starts.
  void build();

  // Build (if needed), warm up, and run the measurement window.
  void run();

  [[nodiscard]] ExperimentResult result() const;

  [[nodiscard]] Testbed& testbed() { return *testbed_; }
  [[nodiscard]] Deployment& deployment() { return *deployment_; }
  [[nodiscard]] const std::vector<std::unique_ptr<core::ArClient>>& clients() const {
    return clients_;
  }
  [[nodiscard]] SimTime window_start() const { return window_start_; }
  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  // The run's SLO watchdog (nullptr unless ExperimentConfig::slo is
  // set); the control plane's breach/clear sensor.
  [[nodiscard]] SloWatchdog* slo_watchdog() { return slo_.get(); }

 private:
  void sample_replicas();
  void start_utilization_sampling();
  void sample_utilization();

  // Per-machine sampler state: last busy-integral snapshots so each
  // point reports the interval mean rather than an aliased instant.
  struct MachineSampler {
    MachineId id{};
    double last_cpu_integral = 0.0;
    std::vector<double> last_gpu_integrals;
    SimTime last_t = 0;
    MachineTimeline timeline;
  };

  ExperimentConfig config_;
  std::unique_ptr<Testbed> testbed_;
  std::unique_ptr<Deployment> deployment_;
  std::vector<std::unique_ptr<core::ArClient>> clients_;
  std::vector<telemetry::Accumulator> replica_memory_bytes_;
  std::vector<MachineSampler> machine_samplers_;
  std::unique_ptr<SloWatchdog> slo_;
  std::unique_ptr<TailSampler> tail_;
  std::unique_ptr<fault::FaultInjector> injector_;
  SimTime window_start_ = 0;
  bool ran_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

// Convenience wrapper for the common "configure, run, report" path.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace mar::expt
