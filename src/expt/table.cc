#include "expt/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mar::expt {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : columns_[c];
      out << (c ? "  " : "") << cell;
      for (std::size_t pad = cell.size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(columns_);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << (c ? "  " : "") << std::string(widths[c], '-');
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

void print_banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace mar::expt
