#include "expt/attribution.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>

#include "expt/table.h"
#include "telemetry/registry.h"

namespace mar::expt {
namespace {

using telemetry::CriticalPath;
using telemetry::kNumPathComponents;
using telemetry::PathComponent;

// Band layout over the delivered population, ranked fastest-first.
struct BandSpec {
  const char* label;
  double lo;
  double hi;
};
constexpr BandSpec kBands[] = {
    {"p50", 0.0, 0.50},
    {"p90", 0.50, 0.90},
    {"p99", 0.90, 0.99},
    {"p100", 0.99, 1.0},
};

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

BlameReport build_blame_report(const TraceLog& log) {
  BlameReport r;

  // Group the log's events per traced frame, preserving record order
  // within each frame (the extractor breaks ts ties by input order).
  std::unordered_map<std::uint32_t, std::vector<telemetry::TraceEvent>> by_trace;
  std::vector<std::uint32_t> order;  // first-seen, for determinism
  for (const auto& e : log.events) {
    if (e.trace_id == 0) continue;
    auto [it, fresh] = by_trace.try_emplace(e.trace_id);
    if (fresh) order.push_back(e.trace_id);
    it->second.push_back(e);
  }

  std::vector<CriticalPath> delivered;
  for (std::uint32_t id : order) {
    CriticalPath cp = telemetry::extract_critical_path(by_trace[id]);
    ++r.frames_total;
    r.open_spans += cp.open_spans;
    r.orphan_ends += cp.orphan_ends;
    if (cp.delivered) {
      ++r.frames_delivered;
      delivered.push_back(std::move(cp));
    } else if (cp.verdict == "incomplete") {
      ++r.frames_incomplete;
    } else {
      ++r.frames_dropped;
    }
  }
  if (delivered.empty()) return r;

  std::sort(delivered.begin(), delivered.end(),
            [](const CriticalPath& a, const CriticalPath& b) {
              return a.total_ms() != b.total_ms() ? a.total_ms() < b.total_ms()
                                                  : a.trace_id < b.trace_id;
            });
  const std::size_t n = delivered.size();
  const std::size_t p99_rank = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(n) - 1.0, std::ceil(0.99 * static_cast<double>(n)) - 1.0));
  r.e2e_p99_ms = delivered[std::max<std::size_t>(p99_rank, 0)].total_ms();

  for (const CriticalPath& cp : delivered) {
    for (int c = 0; c < kNumPathComponents; ++c) {
      r.overall_mean_ms[static_cast<std::size_t>(c)] +=
          cp.blame_ms[static_cast<std::size_t>(c)] / static_cast<double>(n);
    }
  }

  for (const BandSpec& spec : kBands) {
    const auto lo = static_cast<std::size_t>(spec.lo * static_cast<double>(n));
    auto hi = static_cast<std::size_t>(spec.hi * static_cast<double>(n));
    if (spec.hi >= 1.0) hi = n;
    if (hi <= lo) continue;
    BlameBand band;
    band.label = spec.label;
    band.lo = spec.lo;
    band.hi = spec.hi;
    band.frames = static_cast<int>(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      const CriticalPath& cp = delivered[i];
      const double inv = 1.0 / static_cast<double>(band.frames);
      band.mean_total_ms += cp.total_ms() * inv;
      band.max_total_ms = std::max(band.max_total_ms, cp.total_ms());
      for (int c = 0; c < kNumPathComponents; ++c) {
        band.mean_ms[static_cast<std::size_t>(c)] +=
            cp.blame_ms[static_cast<std::size_t>(c)] * inv;
      }
      for (int s = 0; s < kNumStages; ++s) {
        band.queue_ms[static_cast<std::size_t>(s)] +=
            cp.stage_queue_ms[static_cast<std::size_t>(s)] * inv;
        band.service_ms[static_cast<std::size_t>(s)] +=
            cp.stage_service_ms[static_cast<std::size_t>(s)] * inv;
      }
    }
    r.bands.push_back(std::move(band));
  }
  return r;
}

std::string render_blame_table(const BlameReport& r) {
  std::string out;
  append(out,
         "blame report: %d traced frames (%d delivered, %d dropped, %d incomplete), "
         "e2e p99 %.1f ms\n",
         r.frames_total, r.frames_delivered, r.frames_dropped, r.frames_incomplete,
         r.e2e_p99_ms);
  if (r.open_spans || r.orphan_ends) {
    append(out, "malformed spans: %d open (clamped), %d cross-track orphan ends\n",
           r.open_spans, r.orphan_ends);
  }
  if (r.bands.empty()) return out;

  std::vector<std::string> cols{"band", "frames", "total ms"};
  // Only components that appear anywhere get a column.
  std::vector<int> active;
  for (int c = 0; c < kNumPathComponents; ++c) {
    bool any = false;
    for (const BlameBand& b : r.bands) any = any || b.mean_ms[static_cast<std::size_t>(c)] > 0.0;
    if (any) {
      active.push_back(c);
      cols.emplace_back(telemetry::to_string(static_cast<PathComponent>(c)));
    }
  }
  Table t(cols);
  for (const BlameBand& b : r.bands) {
    std::vector<std::string> row{b.label, std::to_string(b.frames),
                                 Table::num(b.mean_total_ms, 2)};
    for (int c : active) row.push_back(Table::num(b.mean_ms[static_cast<std::size_t>(c)], 2));
    t.add_row(std::move(row));
  }
  out += t.to_string();

  out += "per-stage queue vs service self-time (band means, ms):\n";
  for (const BlameBand& b : r.bands) {
    append(out, "  %-5s", b.label.c_str());
    for (int s = 0; s < kNumStages; ++s) {
      const double q = b.queue_ms[static_cast<std::size_t>(s)];
      const double sv = b.service_ms[static_cast<std::size_t>(s)];
      if (q <= 0.0 && sv <= 0.0) continue;
      append(out, "  %s q=%.2f s=%.2f", to_string(static_cast<Stage>(s)), q, sv);
    }
    out += "\n";
  }
  return out;
}

std::string blame_report_json(const BlameReport& r) {
  std::string out = "{\n";
  append(out, "  \"frames_total\": %d,\n", r.frames_total);
  append(out, "  \"frames_delivered\": %d,\n", r.frames_delivered);
  append(out, "  \"frames_dropped\": %d,\n", r.frames_dropped);
  append(out, "  \"frames_incomplete\": %d,\n", r.frames_incomplete);
  append(out, "  \"open_spans\": %d,\n", r.open_spans);
  append(out, "  \"orphan_ends\": %d,\n", r.orphan_ends);
  append(out, "  \"e2e_p99_ms\": %.6g,\n", r.e2e_p99_ms);
  out += "  \"overall_mean_ms\": {";
  bool first = true;
  for (int c = 0; c < kNumPathComponents; ++c) {
    const double v = r.overall_mean_ms[static_cast<std::size_t>(c)];
    if (v <= 0.0) continue;
    append(out, "%s\"%s\": %.6g", first ? "" : ", ",
           telemetry::to_string(static_cast<PathComponent>(c)), v);
    first = false;
  }
  out += "},\n  \"bands\": [\n";
  for (std::size_t i = 0; i < r.bands.size(); ++i) {
    const BlameBand& b = r.bands[i];
    append(out, "    {\"band\": \"%s\", \"frames\": %d, \"mean_total_ms\": %.6g, "
                "\"max_total_ms\": %.6g, \"components\": {",
           b.label.c_str(), b.frames, b.mean_total_ms, b.max_total_ms);
    first = true;
    for (int c = 0; c < kNumPathComponents; ++c) {
      const double v = b.mean_ms[static_cast<std::size_t>(c)];
      if (v <= 0.0) continue;
      append(out, "%s\"%s\": %.6g", first ? "" : ", ",
             telemetry::to_string(static_cast<PathComponent>(c)), v);
      first = false;
    }
    out += "}, \"stages\": {";
    first = true;
    for (int s = 0; s < kNumStages; ++s) {
      const double q = b.queue_ms[static_cast<std::size_t>(s)];
      const double sv = b.service_ms[static_cast<std::size_t>(s)];
      if (q <= 0.0 && sv <= 0.0) continue;
      append(out, "%s\"%s\": {\"queue_ms\": %.6g, \"service_ms\": %.6g}",
             first ? "" : ", ", to_string(static_cast<Stage>(s)), q, sv);
      first = false;
    }
    append(out, "}}%s\n", i + 1 < r.bands.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

void publish_blame_gauges(const BlameReport& r) {
  auto& reg = telemetry::MetricRegistry::instance();
  const char* help = "Critical-path blame: band-mean milliseconds per component";
  for (const BlameBand& b : r.bands) {
    for (int c = 0; c < kNumPathComponents; ++c) {
      const double v = b.mean_ms[static_cast<std::size_t>(c)];
      if (v <= 0.0) continue;
      reg.gauge("mar_blame_ms", help,
                {{"component", telemetry::to_string(static_cast<PathComponent>(c))},
                 {"percentile", b.label}})
          .set(v);
    }
  }
  for (int c = 0; c < kNumPathComponents; ++c) {
    const double v = r.overall_mean_ms[static_cast<std::size_t>(c)];
    if (v <= 0.0) continue;
    reg.gauge("mar_blame_ms", help,
              {{"component", telemetry::to_string(static_cast<PathComponent>(c))},
               {"percentile", "overall"}})
        .set(v);
  }
}

// --- BurnRate ---------------------------------------------------------

BurnRate::BurnRate(BurnRateConfig config) : cfg_(config) {}

void BurnRate::observe(SimTime t, bool violating, double ingress_fps) {
  samples_.push_back(Sample{t, violating, ingress_fps});
  const SimDuration keep = std::max(cfg_.slow_window, cfg_.trend_window);
  while (!samples_.empty() && samples_.front().t < t - keep) samples_.pop_front();
}

double BurnRate::burn(SimTime now, SimDuration window) const {
  int in_window = 0;
  int breached = 0;
  for (const Sample& s : samples_) {
    if (s.t < now - window) continue;
    ++in_window;
    if (s.violating) ++breached;
  }
  if (in_window == 0 || cfg_.budget <= 0.0) return 0.0;
  return (static_cast<double>(breached) / static_cast<double>(in_window)) / cfg_.budget;
}

double BurnRate::ingress_trend_fps_per_s(SimTime now) const {
  // Least-squares slope over the trend window, x in seconds.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  int n = 0;
  const SimTime lo = now - cfg_.trend_window;
  for (const Sample& s : samples_) {
    if (s.t < lo) continue;
    const double x = to_millis(s.t - lo) / 1000.0;
    sx += x;
    sy += s.ingress_fps;
    sxx += x * x;
    sxy += x * s.ingress_fps;
    ++n;
  }
  if (n < 3) return 0.0;
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  if (denom <= 0.0) return 0.0;
  return (static_cast<double>(n) * sxy - sx * sy) / denom;
}

void BurnRate::publish(SimTime now) const {
  auto& reg = telemetry::MetricRegistry::instance();
  const char* help = "SLO error-budget burn rate (breach fraction / budget) per window";
  reg.gauge("mar_slo_burn_rate", help, {{"window", "fast"}}).set(fast_burn(now));
  reg.gauge("mar_slo_burn_rate", help, {{"window", "slow"}}).set(slow_burn(now));
  reg.gauge("mar_ingress_trend_fps",
            "Least-squares ingress trend over the fit window (fps per second)")
      .set(ingress_trend_fps_per_s(now));
}

}  // namespace mar::expt
