#include "expt/experiment.h"

#include <algorithm>
#include <numeric>

#include "core/services.h"
#include "telemetry/histogram.h"

namespace mar::expt {
namespace {

constexpr SimDuration kReplicaSampleInterval = millis(500.0);
constexpr double kBytesPerGiB = 1024.0 * 1024.0 * 1024.0;

MachineId site_to_machine(Site s, const Testbed& tb) {
  switch (s) {
    case Site::kE1:
      return tb.e1();
    case Site::kE2:
      return tb.e2();
    case Site::kCloud:
      return tb.cloud();
  }
  return tb.e1();
}

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

}  // namespace

SymbolicPlacement SymbolicPlacement::single(Site site) {
  SymbolicPlacement p;
  for (auto& r : p.replicas) r = {site};
  return p;
}

SymbolicPlacement SymbolicPlacement::per_stage(const std::array<Site, kNumStages>& sites) {
  SymbolicPlacement p;
  for (std::size_t i = 0; i < kNumStages; ++i) p.replicas[i] = {sites[i]};
  return p;
}

SymbolicPlacement SymbolicPlacement::replicated(const std::array<int, kNumStages>& counts,
                                                Site primary_site, Site secondary_site) {
  SymbolicPlacement p;
  for (std::size_t i = 0; i < kNumStages; ++i) {
    for (int r = 0; r < counts[i]; ++r) {
      p.replicas[i].push_back(r % 2 == 0 ? primary_site : secondary_site);
    }
  }
  return p;
}

PlacementConfig SymbolicPlacement::resolve(const Testbed& tb) const {
  PlacementConfig cfg;
  for (std::size_t i = 0; i < kNumStages; ++i) {
    for (Site s : replicas[i]) cfg.replicas[i].push_back(site_to_machine(s, tb));
  }
  return cfg;
}

std::string SymbolicPlacement::to_label() const {
  std::string out = "[";
  for (std::size_t i = 0; i < kNumStages; ++i) {
    if (i) out += ",";
    if (replicas[i].size() == 1) {
      out += to_string(replicas[i][0]);
    } else {
      out += std::to_string(replicas[i].size());
    }
  }
  return out + "]";
}

Experiment::Experiment(ExperimentConfig config) : config_(std::move(config)) {}

Experiment::~Experiment() { *alive_ = false; }

void Experiment::build() {
  if (testbed_ != nullptr) return;
  TestbedConfig tb_cfg = config_.testbed;
  tb_cfg.seed = config_.seed;
  testbed_ = std::make_unique<Testbed>(tb_cfg);
  deployment_ = std::make_unique<Deployment>(*testbed_, config_.mode,
                                             config_.placement.resolve(*testbed_),
                                             config_.costs, config_.features);
  if (config_.monitor) testbed_->orchestrator().start_monitor(seconds(1.0));
  if (config_.failover) testbed_->orchestrator().enable_failover(*config_.failover);

  if (config_.slo) {
    slo_ = std::make_unique<SloWatchdog>(*config_.slo, "pipeline", config_.num_clients);
  }

  if (config_.retention) {
    auto& recorder = telemetry::FlightRecorder::instance();
    recorder.configure(config_.retention->flight_buffers);
    recorder.set_enabled(true);
    tail_ = std::make_unique<TailSampler>(*config_.retention);
    tail_->set_slo(slo_.get());
  }

  Rng client_rng(config_.seed ^ 0xc11e57);
  for (int i = 0; i < config_.num_clients; ++i) {
    core::ClientConfig cc;
    cc.id = ClientId{static_cast<std::uint32_t>(i)};
    cc.fps = config_.client_fps;
    cc.phase_offset = static_cast<SimDuration>(i) * millis(3.7) +
                      static_cast<SimDuration>(i) * config_.client_stagger;
    cc.trace_sample_every = config_.trace_sample_every;
    if (slo_ || config_.on_frame_hook) {
      cc.on_frame = [this](SimTime t, double e2e_ms, bool success) {
        if (slo_) {
          slo_->observe_frame(t, e2e_ms, success);
          slo_->evaluate(t);
        }
        if (config_.on_frame_hook) config_.on_frame_hook(t, e2e_ms, success);
      };
    }
    if (tail_) {
      cc.trace_all_frames = true;
      cc.on_frame_closed = [this](const wire::FrameHeader& h, SimTime t, double e2e_ms,
                                  bool success) {
        tail_->on_frame_closed(h, t, e2e_ms, success);
      };
    }
    auto client = std::make_unique<core::ArClient>(
        testbed_->runtime(), testbed_->orchestrator().machine(testbed_->client_machine()),
        testbed_->orchestrator(), cc, client_rng.fork());
    client->start();
    clients_.push_back(std::move(client));
  }

  replica_memory_bytes_.resize(deployment_->instances().size());
  testbed_->loop().schedule_after(kReplicaSampleInterval, [this, alive = alive_] {
    if (*alive) sample_replicas();
  });
}

void Experiment::run() {
  build();
  // Warm-up: run, then reset every measurement window.
  testbed_->loop().run_until(config_.warmup);
  for (auto& c : clients_) c->stats().reset();
  for (InstanceId id : deployment_->instances()) {
    dsp::ServiceHost& host = deployment_->host(id);
    host.stats().reset_window();
    host.compute().reset_busy();
  }
  for (std::size_t m = 0; m < testbed_->orchestrator().num_machines(); ++m) {
    testbed_->orchestrator().machine(MachineId{static_cast<std::uint32_t>(m)}).reset_windows();
  }
  for (auto& acc : replica_memory_bytes_) acc.reset();
  window_start_ = testbed_->loop().now();
  if (config_.utilization_sample_interval > 0) start_utilization_sampling();
  if (config_.fault_plan && !config_.fault_plan->empty()) {
    // Armed at the window start: fault times in the plan are relative
    // to the beginning of the measurement window.
    injector_ =
        std::make_unique<fault::FaultInjector>(testbed_->runtime(), testbed_->orchestrator());
    injector_->arm(*config_.fault_plan);
  }
  if (tail_ && injector_) tail_->set_injector(injector_.get());

  testbed_->loop().run_until(config_.warmup + config_.duration);
  for (auto& c : clients_) c->stop();
  // The completion verdicts all happened during the run; dropping the
  // global gate keeps a later retention-less experiment in the same
  // process from paying the flight-recorder lookup.
  if (tail_) telemetry::FlightRecorder::instance().set_enabled(false);
  ran_ = true;
}

void Experiment::sample_replicas() {
  // Autoscalers may add replicas mid-run.
  if (replica_memory_bytes_.size() < deployment_->instances().size()) {
    replica_memory_bytes_.resize(deployment_->instances().size());
  }
  for (std::size_t i = 0; i < deployment_->instances().size(); ++i) {
    replica_memory_bytes_[i].add(
        static_cast<double>(deployment_->host(deployment_->instances()[i]).memory_used()));
  }
  testbed_->loop().schedule_after(kReplicaSampleInterval, [this, alive = alive_] {
    if (*alive) sample_replicas();
  });
}

void Experiment::start_utilization_sampling() {
  machine_samplers_.clear();
  auto& orch = testbed_->orchestrator();
  const SimTime now = testbed_->loop().now();
  for (std::size_t m = 0; m < orch.num_machines(); ++m) {
    const MachineId id{static_cast<std::uint32_t>(m)};
    hw::Machine& machine = orch.machine(id);
    MachineSampler s;
    s.id = id;
    s.timeline.machine = machine.spec().name;
    s.last_cpu_integral = machine.cpu().busy_integral();
    for (std::size_t g = 0; g < machine.num_gpus(); ++g) {
      s.last_gpu_integrals.push_back(machine.gpu(g).busy_integral());
    }
    s.last_t = now;
    machine_samplers_.push_back(std::move(s));
  }
  testbed_->loop().schedule_after(config_.utilization_sample_interval,
                                  [this, alive = alive_] {
                                    if (*alive) sample_utilization();
                                  });
}

void Experiment::sample_utilization() {
  // Read-only walk over the pools: never touches RNG or model state, so
  // the simulation trajectory is identical with sampling on or off.
  const SimTime now = testbed_->loop().now();
  auto& orch = testbed_->orchestrator();
  for (MachineSampler& s : machine_samplers_) {
    hw::Machine& machine = orch.machine(s.id);
    const double dt = static_cast<double>(now - s.last_t);
    if (dt <= 0.0) continue;

    UtilizationPoint p;
    p.t_s = to_seconds(now - window_start_);

    const double cpu_integral = machine.cpu().busy_integral();
    p.cpu = (cpu_integral - s.last_cpu_integral) /
            (dt * std::max<double>(machine.cpu().capacity(), 1.0));
    s.last_cpu_integral = cpu_integral;

    double gpu = 0.0;
    for (std::size_t g = 0; g < machine.num_gpus(); ++g) {
      const double integral = machine.gpu(g).busy_integral();
      gpu += (integral - s.last_gpu_integrals[g]) /
             (dt * std::max<double>(machine.gpu(g).capacity(), 1.0));
      s.last_gpu_integrals[g] = integral;
    }
    p.gpu = machine.num_gpus() ? gpu / static_cast<double>(machine.num_gpus()) : 0.0;

    p.mem_gb = static_cast<double>(machine.memory().used()) / kBytesPerGiB;
    std::uint64_t state_bytes = 0;
    for (InstanceId id : deployment_->instances()) {
      dsp::ServiceHost& host = deployment_->host(id);
      if (host.machine().id().value() == s.id.value()) {
        state_bytes += host.app_memory_used();
      }
    }
    p.state_gb = static_cast<double>(state_bytes) / kBytesPerGiB;

    s.timeline.points.push_back(p);
    s.last_t = now;
  }
  testbed_->loop().schedule_after(config_.utilization_sample_interval,
                                  [this, alive = alive_] {
                                    if (*alive) sample_utilization();
                                  });
}

ExperimentResult Experiment::result() const {
  ExperimentResult res;
  if (!ran_) return res;
  const double window_s = to_seconds(config_.duration);

  telemetry::Histogram e2e_all;
  telemetry::Accumulator jitter;
  std::uint64_t sent = 0, ok = 0;
  for (const auto& c : clients_) {
    const core::ClientStats& s = c->stats();
    res.per_client_fps.push_back(static_cast<double>(s.successes) / window_s);
    e2e_all.merge(s.e2e_ms);
    if (s.jitter_ms.count()) jitter.add(s.jitter_ms.mean());
    sent += s.frames_sent;
    ok += s.successes;
  }
  if (!res.per_client_fps.empty()) {
    res.fps_mean = std::accumulate(res.per_client_fps.begin(), res.per_client_fps.end(), 0.0) /
                   static_cast<double>(res.per_client_fps.size());
    res.fps_median = median_of(res.per_client_fps);
  }
  res.e2e_ms_mean = e2e_all.mean();
  res.e2e_ms_median = e2e_all.median();
  res.e2e_ms_p95 = e2e_all.percentile(95.0);
  res.success_rate = sent ? static_cast<double>(ok) / static_cast<double>(sent) : 0.0;
  res.jitter_ms = jitter.mean();

  // Per-replica reports, replica index counted within its stage.
  std::array<int, kNumStages> replica_counter{};
  auto& orch = testbed_->orchestrator();
  for (std::size_t i = 0; i < deployment_->instances().size(); ++i) {
    const InstanceId id = deployment_->instances()[i];
    const dsp::ServiceHost& host = orch.host(id);
    auto& mutable_host = const_cast<dsp::ServiceHost&>(host);
    hw::Machine& machine = mutable_host.machine();

    ServiceReport r;
    r.stage = host.stage();
    r.replica_index = replica_counter[static_cast<std::size_t>(host.stage())]++;
    r.machine = machine.spec().name;
    r.service_ms_mean = host.stats().process_time_ms.mean();
    r.queue_ms_mean = host.stats().queue_time_ms.mean();
    r.mem_gb_mean = (i < replica_memory_bytes_.size() && replica_memory_bytes_[i].count())
                        ? replica_memory_bytes_[i].mean() / kBytesPerGiB
                        : static_cast<double>(host.memory_used()) / kBytesPerGiB;
    const double window_ns = static_cast<double>(config_.duration);
    r.cpu_share = static_cast<double>(mutable_host.compute().cpu_busy()) /
                  (window_ns * machine.spec().cpu_cores);
    const double n_gpus = std::max<std::size_t>(machine.num_gpus(), 1);
    r.gpu_share =
        static_cast<double>(mutable_host.compute().gpu_busy()) / (window_ns * n_gpus);
    r.drop_ratio = host.stats().drop_ratio();
    r.received = host.stats().received;
    r.ingress_fps = static_cast<double>(host.stats().received) / window_s;
    res.services.push_back(r);
  }

  for (std::size_t m = 0; m < orch.num_machines(); ++m) {
    hw::Machine& machine = orch.machine(MachineId{static_cast<std::uint32_t>(m)});
    MachineReport mr;
    mr.name = machine.spec().name;
    mr.cpu_util = machine.cpu().utilization();
    double gpu = 0.0;
    for (std::size_t g = 0; g < machine.num_gpus(); ++g) gpu += machine.gpu(g).utilization();
    mr.gpu_util = machine.num_gpus() ? gpu / static_cast<double>(machine.num_gpus()) : 0.0;
    mr.mem_gb_mean = machine.memory().mean_used() / kBytesPerGiB;
    mr.cpu_peak = machine.cpu().capacity()
                      ? static_cast<double>(machine.cpu().peak_in_use()) /
                            static_cast<double>(machine.cpu().capacity())
                      : 0.0;
    mr.mem_gb_peak = static_cast<double>(machine.memory().peak()) / kBytesPerGiB;
    res.machines.push_back(mr);
  }

  for (const MachineSampler& s : machine_samplers_) res.timelines.push_back(s.timeline);

  if (slo_) {
    res.slo.enabled = true;
    res.slo.violating = slo_->violating();
    res.slo.transitions = slo_->transitions();
    res.slo.violations_entered = slo_->violations_entered();
    res.slo.window_fps = slo_->window_fps();
    res.slo.window_p99_ms = slo_->window_p99_ms();
  }

  // Fault-plane accounting: dead (retired) replicas still carry their
  // counters — crashes are exactly where those numbers matter.
  res.fault.enabled = injector_ != nullptr || config_.failover.has_value();
  if (injector_ != nullptr) res.fault.injected = injector_->injected();
  res.fault.suspected = orch.failover_suspected();
  res.fault.respawns = orch.failover_respawns();
  res.fault.routing_failures = orch.routing_failures();
  const auto account = [&res](const dsp::ServiceHost& host) {
    res.fault.tx_suppressed += host.stats().tx_suppressed;
    res.fault.tx_unroutable += host.stats().tx_unroutable;
    auto& servicelet = const_cast<dsp::ServiceHost&>(host).servicelet();
    if (const auto* sift = dynamic_cast<const core::SiftService*>(&servicelet)) {
      res.fault.state_lost += sift->state_lost();
    } else if (const auto* match = dynamic_cast<const core::MatchingService*>(&servicelet)) {
      res.fault.fetch_timeouts += match->fetch_timeouts();
      res.fault.fetch_retries += match->fetch_retries();
    }
  };
  for (std::size_t i = 0; i < orch.instance_count(); ++i) {
    account(orch.host(InstanceId{static_cast<std::uint32_t>(i)}));
  }
  for (const auto& dead : orch.retired_hosts()) account(*dead);

  if (tail_) res.retention = tail_->report();
  return res;
}

double ExperimentResult::stage_mem_gb(Stage stage) const {
  double out = 0.0;
  for (const auto& s : services) {
    if (s.stage == stage) out += s.mem_gb_mean;
  }
  return out;
}

double ExperimentResult::stage_cpu_share(Stage stage) const {
  double out = 0.0;
  for (const auto& s : services) {
    if (s.stage == stage) out += s.cpu_share;
  }
  return out;
}

double ExperimentResult::stage_gpu_share(Stage stage) const {
  double out = 0.0;
  for (const auto& s : services) {
    if (s.stage == stage) out += s.gpu_share;
  }
  return out;
}

double ExperimentResult::stage_service_ms(Stage stage) const {
  double sum = 0.0;
  int n = 0;
  for (const auto& s : services) {
    if (s.stage == stage && s.service_ms_mean > 0.0) {
      sum += s.service_ms_mean;
      ++n;
    }
  }
  return n ? sum / n : 0.0;
}

double ExperimentResult::stage_drop_ratio(Stage stage) const {
  std::uint64_t received = 0;
  double dropped = 0.0;
  for (const auto& s : services) {
    if (s.stage == stage) {
      received += s.received;
      dropped += s.drop_ratio * static_cast<double>(s.received);
    }
  }
  return received ? dropped / static_cast<double>(received) : 0.0;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  Experiment e(config);
  e.run();
  return e.result();
}

}  // namespace mar::expt
