// Tail-based trace retention policy: the decision half of the
// telemetry::FlightRecorder.
//
// Clients running with ClientConfig::trace_all_frames give every frame
// a trace id and a flight-recorder buffer; at the completion point
// (ClientConfig::on_frame_closed) the TailSampler decides the buffer's
// fate. Promotion reasons, in precedence order:
//
//   kSlo      — the frame closed while the run's SloWatchdog was in a
//               violation window (hook: SloWatchdog::violating()).
//   kFault    — the frame closed inside an active injected-fault window
//               (hook: fault::FaultInjector::active_windows()).
//   kOutlier  — the frame's E2E latency reached outlier_factor × the
//               rolling p99 over the last outlier_window closed frames.
//   kBaseline — deterministic 1-in-N background sample, so healthy
//               traffic stays represented in the retained set.
//
// Anything else recycles. Frames that never close — terminal drop/loss
// instants — are flushed by the FlightRecorder itself (kDrop) and never
// reach the sampler.
//
// Every closed frame is also observed into the registry's
// mar_frame_e2e_ms histogram; promoted frames attach their trace id as
// the bucket's exemplar, so a latency spike on /metrics points straight
// at a retained trace.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "fault/injector.h"
#include "expt/slo.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/registry.h"
#include "wire/message.h"

namespace mar::expt {

struct TailRetentionConfig {
  // Deterministic 1-in-N baseline sample of healthy frames (0 = none).
  std::uint32_t baseline_every = 64;
  // Promote when e2e_ms >= outlier_factor * rolling_p99 (and the
  // rolling window has warmed up). <= 0 disables outlier promotion.
  double outlier_factor = 1.0;
  // Closed frames in the rolling-p99 window.
  std::size_t outlier_window = 512;
  // Flight-recorder slots (rounded up to a power of two). Sized for
  // the frames simultaneously in flight, not the total frame count.
  std::size_t flight_buffers = 1024;
  bool promote_on_slo = true;
  bool promote_on_fault = true;
};

// Counters the run reports next to the SLO/fault planes. `enabled`
// false means retention was not configured and every other field is 0.
struct RetentionReport {
  bool enabled = false;
  std::uint64_t frames_closed = 0;
  // Frames that closed while the SLO watchdog was violating —
  // independent of retention, the denominator for SLO coverage.
  std::uint64_t slo_breach_frames = 0;
  std::uint64_t retained_slo = 0;
  std::uint64_t retained_fault = 0;
  std::uint64_t retained_outlier = 0;
  std::uint64_t retained_baseline = 0;
  std::uint64_t recycled = 0;
  // FlightRecorder stats, snapshotted at report time.
  std::uint64_t drop_flushed = 0;
  std::uint64_t evicted = 0;
  std::uint64_t truncated = 0;

  [[nodiscard]] std::uint64_t retained_total() const {
    return retained_slo + retained_fault + retained_outlier + retained_baseline +
           drop_flushed;
  }
};

// Completion-point retention verdicts. Single-threaded like the event
// loop that drives it; the hooks it reads (watchdog, injector) are
// plain member reads.
class TailSampler {
 public:
  explicit TailSampler(TailRetentionConfig config);

  // Optional hooks; null pointers disable the corresponding reason.
  void set_slo(const SloWatchdog* slo) { slo_ = slo; }
  void set_injector(const fault::FaultInjector* injector) { injector_ = injector; }

  // The ClientConfig::on_frame_closed hook: decide promote/recycle for
  // one closed frame.
  void on_frame_closed(const wire::FrameHeader& h, SimTime ts, double e2e_ms,
                       bool success);

  [[nodiscard]] RetentionReport report() const;
  [[nodiscard]] double rolling_p99_ms() const { return rolling_p99_ms_; }

 private:
  [[nodiscard]] telemetry::RetainReason classify(double e2e_ms);
  void observe_rolling(double e2e_ms);

  TailRetentionConfig config_;
  const SloWatchdog* slo_ = nullptr;
  const fault::FaultInjector* injector_ = nullptr;
  telemetry::FixedHistogram& e2e_histogram_;

  // Rolling-p99 ring over the last outlier_window closed frames,
  // recomputed every kRecomputeEvery closes (sorting per frame would be
  // O(n log n) on the hot path for no accuracy gain).
  static constexpr std::uint64_t kRecomputeEvery = 64;
  std::vector<double> window_;
  std::size_t window_next_ = 0;
  bool window_full_ = false;
  double rolling_p99_ms_ = 0.0;

  RetentionReport report_;
};

}  // namespace mar::expt
