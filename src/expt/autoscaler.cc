#include "expt/autoscaler.h"

namespace mar::expt {

AutoScaler::AutoScaler(Deployment& deployment, Config config)
    : deployment_(deployment), config_(config) {}

AutoScaler::~AutoScaler() { *alive_ = false; }

void AutoScaler::start() {
  if (running_) return;
  running_ = true;
  deployment_.testbed().runtime().schedule_after(config_.interval, [this, alive = alive_] {
    if (*alive) tick();
  });
}

MachineId AutoScaler::spill_machine() const {
  switch (config_.spill_site) {
    case Site::kE1:
      return deployment_.testbed().e1();
    case Site::kE2:
      return deployment_.testbed().e2();
    case Site::kCloud:
      return deployment_.testbed().cloud();
  }
  return deployment_.testbed().e1();
}

void AutoScaler::tick() {
  auto& orch = deployment_.testbed().orchestrator();

  Stage worst_stage = Stage::kPrimary;
  double worst_signal = 0.0;

  if (config_.signal == Signal::kApplication) {
    // Per-stage drop ratio over the last interval, from the sidecar's
    // application metrics.
    for (int s = 0; s < kNumStages; ++s) {
      const auto stage = static_cast<Stage>(s);
      std::uint64_t received = 0, dropped = 0;
      for (dsp::ServiceHost* host : deployment_.hosts_of(stage)) {
        received += host->stats().received;
        dropped += host->stats().dropped_total();
      }
      StageCounters& prev = last_[static_cast<std::size_t>(s)];
      if (received < prev.received || dropped < prev.dropped) {
        // Stats window was reset (warmup boundary); resynchronize.
        prev = StageCounters{received, dropped};
        continue;
      }
      const std::uint64_t d_recv = received - prev.received;
      const std::uint64_t d_drop = dropped - prev.dropped;
      prev.received = received;
      prev.dropped = dropped;
      if (d_recv == 0) continue;
      const double ratio = static_cast<double>(d_drop) / static_cast<double>(d_recv);
      if (ratio > worst_signal) {
        worst_signal = ratio;
        worst_stage = stage;
      }
    }
  } else {
    // Hardware-only view: instantaneous normalized GPU occupancy per
    // machine; attribute the signal to the busiest stage on the
    // busiest machine (the orchestrator cannot do better than that).
    double busiest = 0.0;
    MachineId busiest_machine = MachineId::invalid();
    for (std::size_t m = 0; m < orch.num_machines(); ++m) {
      hw::Machine& machine = orch.machine(MachineId{static_cast<std::uint32_t>(m)});
      double occupancy = 0.0;
      for (std::size_t g = 0; g < machine.num_gpus(); ++g) {
        occupancy += static_cast<double>(machine.gpu(g).in_use()) / machine.gpu(g).capacity();
      }
      if (machine.num_gpus()) occupancy /= static_cast<double>(machine.num_gpus());
      if (occupancy > busiest) {
        busiest = occupancy;
        busiest_machine = machine.id();
      }
    }
    if (busiest_machine.valid()) {
      worst_signal = busiest;
      // Blindly scale the heaviest-by-utilization stage on that machine.
      double best_share = -1.0;
      for (InstanceId id : deployment_.instances()) {
        dsp::ServiceHost& host = orch.host(id);
        if (host.machine().id() != busiest_machine) continue;
        const auto share = static_cast<double>(host.compute().gpu_busy());
        if (share > best_share) {
          best_share = share;
          worst_stage = host.stage();
        }
      }
    }
  }

  if (worst_signal >= config_.threshold && worst_stage != Stage::kPrimary) {
    const std::size_t replicas = deployment_.hosts_of(worst_stage).size();
    if (replicas < static_cast<std::size_t>(config_.max_replicas_per_stage)) {
      deployment_.add_replica(worst_stage, spill_machine());
      events_.push_back(
          ScaleEvent{deployment_.testbed().runtime().now(), worst_stage, worst_signal});
    }
  }

  deployment_.testbed().runtime().schedule_after(config_.interval, [this, alive = alive_] {
    if (*alive) tick();
  });
}

}  // namespace mar::expt
