#include "expt/slo.h"

#include <algorithm>
#include <vector>

#include "common/log.h"

namespace mar::expt {

SloWatchdog::SloWatchdog(SloTargets targets, std::string scope, int clients)
    : targets_(targets),
      scope_(std::move(scope)),
      clients_(clients > 0 ? clients : 1),
      fps_violation_gauge_(telemetry::MetricRegistry::instance().gauge(
          "mar_slo_violation", "1 while the SLO target is violated, else 0.",
          {{"scope", scope_}, {"slo", "fps"}})),
      latency_violation_gauge_(telemetry::MetricRegistry::instance().gauge(
          "mar_slo_violation", "1 while the SLO target is violated, else 0.",
          {{"scope", scope_}, {"slo", "e2e_p99"}})),
      window_fps_gauge_(telemetry::MetricRegistry::instance().gauge(
          "mar_slo_window_fps", "Per-client successful FPS over the sliding window.",
          {{"scope", scope_}})),
      window_p99_gauge_(telemetry::MetricRegistry::instance().gauge(
          "mar_slo_window_e2e_p99_ms", "E2E latency p99 over the sliding window.",
          {{"scope", scope_}})),
      transition_counter_(telemetry::MetricRegistry::instance().counter(
          "mar_slo_transitions_total", "SLO state changes (both directions).",
          {{"scope", scope_}})) {}

void SloWatchdog::observe_frame(SimTime t, double e2e_ms, bool success) {
  if (first_observation_ < 0) first_observation_ = t;
  frames_.push_back(Frame{t, e2e_ms, success});
  trim(t);
}

void SloWatchdog::trim(SimTime t) {
  const SimTime cutoff = t - targets_.window;
  while (!frames_.empty() && frames_.front().t < cutoff) frames_.pop_front();
}

bool SloWatchdog::evaluate(SimTime t) {
  trim(t);
  if (first_observation_ < 0 || t - first_observation_ < targets_.warmup) {
    return violating_;
  }

  // Window FPS: successful frames over the elapsed window span, per client.
  const double span_s =
      to_seconds(std::min<SimDuration>(targets_.window, t - first_observation_));
  std::uint64_t successes = 0;
  std::vector<double> latencies;
  latencies.reserve(frames_.size());
  for (const Frame& f : frames_) {
    if (f.success) successes += 1;
    latencies.push_back(f.e2e_ms);
  }
  window_fps_ = span_s > 0.0
                    ? static_cast<double>(successes) / span_s / static_cast<double>(clients_)
                    : 0.0;

  window_p99_ms_ = 0.0;
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const auto idx = static_cast<std::size_t>(
        0.99 * static_cast<double>(latencies.size() - 1) + 0.5);
    window_p99_ms_ = latencies[std::min(idx, latencies.size() - 1)];
  }

  const bool fps_bad = targets_.min_fps > 0.0 && window_fps_ < targets_.min_fps;
  const bool latency_bad =
      targets_.max_e2e_p99_ms > 0.0 && window_p99_ms_ > targets_.max_e2e_p99_ms;

  fps_violation_gauge_.set(fps_bad ? 1.0 : 0.0);
  latency_violation_gauge_.set(latency_bad ? 1.0 : 0.0);
  window_fps_gauge_.set(window_fps_);
  window_p99_gauge_.set(window_p99_ms_);

  const bool now_violating = fps_bad || latency_bad;
  if (now_violating != violating_) {
    std::string reason;
    if (fps_bad) reason = "fps";
    if (latency_bad) reason += reason.empty() ? "e2e_p99" : "+e2e_p99";
    set_state(now_violating, t, reason);
  }
  return violating_;
}

void SloWatchdog::set_state(bool violating, SimTime t, const std::string& reason) {
  violating_ = violating;
  ++transitions_;
  if (violating) ++violations_entered_;
  transition_counter_.inc();

  // One structured line per edge, grep-able key=value fields.
  if (violating) {
    MAR_WARN << "slo_state_change scope=" << scope_ << " state=violating reason=" << reason
             << " t_ms=" << to_millis(t) << " window_fps=" << window_fps_
             << " target_fps=" << targets_.min_fps << " window_p99_ms=" << window_p99_ms_
             << " target_p99_ms=" << targets_.max_e2e_p99_ms;
  } else {
    MAR_INFO << "slo_state_change scope=" << scope_ << " state=healthy t_ms=" << to_millis(t)
             << " window_fps=" << window_fps_ << " window_p99_ms=" << window_p99_ms_;
  }
}

}  // namespace mar::expt
