// Fixed-width text tables for the benchmark harness output: each bench
// prints the rows/series of one paper figure or table.
#pragma once

#include <string>
#include <vector>

namespace mar::expt {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);

  // Numeric convenience: formats with the given precision.
  static std::string num(double v, int precision = 1);
  static std::string pct(double fraction, int precision = 1);  // 0.123 -> "12.3%"

  // Render with aligned columns and a header separator.
  [[nodiscard]] std::string to_string() const;
  void print() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Section banner used between figure panels.
void print_banner(const std::string& title);

}  // namespace mar::expt
