// Auto-scaling controllers, for the application-aware orchestration
// study (paper §6 and Insights I/IV).
//
// Two policies over the same actuation (add a replica of the worst
// stage):
//  * kHardware   — what today's orchestrators can see: scale when a
//    machine's GPU occupancy crosses a threshold. Under scAtteR-style
//    overload utilization stays LOW (services stall on drops), so this
//    scaler never reacts.
//  * kApplication — reads the sidecar's QoS metrics (queue drop ratio)
//    through the proposed virtualization-boundary hook and scales the
//    stage that is actually shedding load.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "expt/deployment.h"
#include "expt/experiment.h"

namespace mar::expt {

class AutoScaler {
 public:
  enum class Signal { kHardware, kApplication };

  struct Config {
    Signal signal = Signal::kApplication;
    // kHardware: mean normalized GPU occupancy that triggers a scale-up.
    // kApplication: per-stage drop ratio (drops/received per interval).
    double threshold = 0.10;
    SimDuration interval = seconds(2.0);
    int max_replicas_per_stage = 3;
    // Machine that receives spilled replicas.
    Site spill_site = Site::kE1;
  };

  struct ScaleEvent {
    SimTime t;
    Stage stage;
    double observed_signal;
  };

  AutoScaler(Deployment& deployment, Config config);
  ~AutoScaler();

  void start();
  [[nodiscard]] const std::vector<ScaleEvent>& events() const { return events_; }

 private:
  void tick();
  [[nodiscard]] MachineId spill_machine() const;

  Deployment& deployment_;
  Config config_;
  std::vector<ScaleEvent> events_;
  // Per-stage counters at the previous tick (delta-based signals).
  struct StageCounters {
    std::uint64_t received = 0;
    std::uint64_t dropped = 0;
  };
  std::array<StageCounters, kNumStages> last_{};
  bool running_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace mar::expt
