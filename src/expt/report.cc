#include "expt/report.h"

#include <cstdio>
#include <sstream>

namespace mar::expt {
namespace {

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string to_csv(const ExperimentResult& result) {
  std::ostringstream out;
  out << "section,key,value\n";
  out << "qos,fps_mean," << fmt(result.fps_mean) << '\n';
  out << "qos,fps_median," << fmt(result.fps_median) << '\n';
  out << "qos,e2e_ms_mean," << fmt(result.e2e_ms_mean) << '\n';
  out << "qos,e2e_ms_median," << fmt(result.e2e_ms_median) << '\n';
  out << "qos,e2e_ms_p95," << fmt(result.e2e_ms_p95) << '\n';
  out << "qos,success_rate," << fmt(result.success_rate) << '\n';
  out << "qos,jitter_ms," << fmt(result.jitter_ms) << '\n';

  out << "\nstage,replica,machine,service_ms,queue_ms,mem_gb,cpu_share,gpu_share,"
         "drop_ratio,received,ingress_fps\n";
  for (const ServiceReport& s : result.services) {
    out << to_string(s.stage) << ',' << s.replica_index << ',' << s.machine << ','
        << fmt(s.service_ms_mean) << ',' << fmt(s.queue_ms_mean) << ',' << fmt(s.mem_gb_mean)
        << ',' << fmt(s.cpu_share) << ',' << fmt(s.gpu_share) << ',' << fmt(s.drop_ratio)
        << ',' << s.received << ',' << fmt(s.ingress_fps) << '\n';
  }

  out << "\nmachine,cpu_util,gpu_util,mem_gb,cpu_peak,mem_gb_peak\n";
  for (const MachineReport& m : result.machines) {
    out << m.name << ',' << fmt(m.cpu_util) << ',' << fmt(m.gpu_util) << ','
        << fmt(m.mem_gb_mean) << ',' << fmt(m.cpu_peak) << ',' << fmt(m.mem_gb_peak) << '\n';
  }
  return out.str();
}

std::string to_json(const ExperimentResult& result) {
  std::ostringstream out;
  out << "{\n  \"qos\": {"
      << "\"fps_mean\": " << fmt(result.fps_mean)
      << ", \"fps_median\": " << fmt(result.fps_median)
      << ", \"e2e_ms_mean\": " << fmt(result.e2e_ms_mean)
      << ", \"e2e_ms_p95\": " << fmt(result.e2e_ms_p95)
      << ", \"success_rate\": " << fmt(result.success_rate)
      << ", \"jitter_ms\": " << fmt(result.jitter_ms) << "},\n  \"services\": [";
  for (std::size_t i = 0; i < result.services.size(); ++i) {
    const ServiceReport& s = result.services[i];
    out << (i ? ",\n    " : "\n    ") << "{\"stage\": \"" << to_string(s.stage)
        << "\", \"replica\": " << s.replica_index << ", \"machine\": \"" << s.machine
        << "\", \"service_ms\": " << fmt(s.service_ms_mean)
        << ", \"queue_ms\": " << fmt(s.queue_ms_mean)
        << ", \"mem_gb\": " << fmt(s.mem_gb_mean) << ", \"cpu_share\": " << fmt(s.cpu_share)
        << ", \"gpu_share\": " << fmt(s.gpu_share)
        << ", \"drop_ratio\": " << fmt(s.drop_ratio) << ", \"received\": " << s.received
        << "}";
  }
  out << "\n  ],\n  \"machines\": [";
  for (std::size_t i = 0; i < result.machines.size(); ++i) {
    const MachineReport& m = result.machines[i];
    out << (i ? ",\n    " : "\n    ") << "{\"name\": \"" << m.name
        << "\", \"cpu_util\": " << fmt(m.cpu_util) << ", \"gpu_util\": " << fmt(m.gpu_util)
        << ", \"mem_gb\": " << fmt(m.mem_gb_mean) << ", \"cpu_peak\": " << fmt(m.cpu_peak)
        << ", \"mem_gb_peak\": " << fmt(m.mem_gb_peak) << "}";
  }
  out << "\n  ]";
  if (!result.timelines.empty()) {
    out << ",\n  \"timelines\": [";
    for (std::size_t i = 0; i < result.timelines.size(); ++i) {
      const MachineTimeline& t = result.timelines[i];
      out << (i ? ",\n    " : "\n    ") << "{\"machine\": \"" << t.machine
          << "\", \"points\": [";
      for (std::size_t j = 0; j < t.points.size(); ++j) {
        const UtilizationPoint& p = t.points[j];
        out << (j ? ", " : "") << "{\"t_s\": " << fmt(p.t_s) << ", \"cpu\": " << fmt(p.cpu)
            << ", \"gpu\": " << fmt(p.gpu) << ", \"mem_gb\": " << fmt(p.mem_gb)
            << ", \"state_gb\": " << fmt(p.state_gb) << "}";
      }
      out << "]}";
    }
    out << "\n  ]";
  }
  if (result.slo.enabled) {
    out << ",\n  \"slo\": {\"violating\": " << (result.slo.violating ? "true" : "false")
        << ", \"transitions\": " << result.slo.transitions
        << ", \"violations_entered\": " << result.slo.violations_entered
        << ", \"window_fps\": " << fmt(result.slo.window_fps)
        << ", \"window_p99_ms\": " << fmt(result.slo.window_p99_ms) << "}";
  }
  out << "\n}\n";
  return out.str();
}

std::string to_prometheus(const ExperimentResult& result) {
  std::ostringstream out;
  out << "# HELP mar_fps Per-client successful frames per second (mean over clients).\n"
      << "# TYPE mar_fps gauge\n"
      << "mar_fps{stat=\"mean\"} " << fmt(result.fps_mean) << '\n'
      << "mar_fps{stat=\"median\"} " << fmt(result.fps_median) << '\n';
  out << "# HELP mar_e2e_ms End-to-end capture-to-result latency (ms).\n"
      << "# TYPE mar_e2e_ms gauge\n"
      << "mar_e2e_ms{stat=\"mean\"} " << fmt(result.e2e_ms_mean) << '\n'
      << "mar_e2e_ms{stat=\"median\"} " << fmt(result.e2e_ms_median) << '\n'
      << "mar_e2e_ms{stat=\"p95\"} " << fmt(result.e2e_ms_p95) << '\n';
  out << "# HELP mar_success_rate Fraction of sent frames returning a recognized pose.\n"
      << "# TYPE mar_success_rate gauge\n"
      << "mar_success_rate " << fmt(result.success_rate) << '\n';
  out << "# HELP mar_jitter_ms Inter-frame receive jitter (ms).\n"
      << "# TYPE mar_jitter_ms gauge\n"
      << "mar_jitter_ms " << fmt(result.jitter_ms) << '\n';

  out << "# HELP mar_service_ms Per-frame processing latency per replica (ms).\n"
      << "# TYPE mar_service_ms gauge\n";
  for (const ServiceReport& s : result.services) {
    const std::string labels = std::string("{stage=\"") + to_string(s.stage) +
                               "\",replica=\"" + std::to_string(s.replica_index) +
                               "\",machine=\"" + s.machine + "\"}";
    out << "mar_service_ms" << labels << ' ' << fmt(s.service_ms_mean) << '\n';
  }
  out << "# HELP mar_queue_ms Sidecar queueing delay per replica (ms).\n"
      << "# TYPE mar_queue_ms gauge\n";
  for (const ServiceReport& s : result.services) {
    out << "mar_queue_ms{stage=\"" << to_string(s.stage) << "\",replica=\""
        << s.replica_index << "\"} " << fmt(s.queue_ms_mean) << '\n';
  }
  out << "# HELP mar_drop_ratio Fraction of received requests dropped per replica.\n"
      << "# TYPE mar_drop_ratio gauge\n";
  for (const ServiceReport& s : result.services) {
    out << "mar_drop_ratio{stage=\"" << to_string(s.stage) << "\",replica=\""
        << s.replica_index << "\"} " << fmt(s.drop_ratio) << '\n';
  }
  out << "# HELP mar_replica_received_total Requests received per replica in the window.\n"
      << "# TYPE mar_replica_received_total counter\n";
  for (const ServiceReport& s : result.services) {
    out << "mar_replica_received_total{stage=\"" << to_string(s.stage) << "\",replica=\""
        << s.replica_index << "\"} " << s.received << '\n';
  }
  out << "# HELP mar_cpu_share Busy CPU time / (window * machine cores) per replica.\n"
      << "# TYPE mar_cpu_share gauge\n";
  for (const ServiceReport& s : result.services) {
    out << "mar_cpu_share{stage=\"" << to_string(s.stage) << "\",replica=\""
        << s.replica_index << "\"} " << fmt(s.cpu_share) << '\n';
  }
  out << "# HELP mar_gpu_share Busy GPU time / (window * machine GPUs) per replica.\n"
      << "# TYPE mar_gpu_share gauge\n";
  for (const ServiceReport& s : result.services) {
    out << "mar_gpu_share{stage=\"" << to_string(s.stage) << "\",replica=\""
        << s.replica_index << "\"} " << fmt(s.gpu_share) << '\n';
  }

  out << "# HELP mar_machine_cpu_util Machine CPU utilization over the window.\n"
      << "# TYPE mar_machine_cpu_util gauge\n";
  for (const MachineReport& m : result.machines) {
    out << "mar_machine_cpu_util{machine=\"" << m.name << "\"} " << fmt(m.cpu_util) << '\n';
  }
  out << "# HELP mar_machine_gpu_util Machine GPU utilization over the window.\n"
      << "# TYPE mar_machine_gpu_util gauge\n";
  for (const MachineReport& m : result.machines) {
    out << "mar_machine_gpu_util{machine=\"" << m.name << "\"} " << fmt(m.gpu_util) << '\n';
  }
  out << "# HELP mar_machine_mem_gb Mean resident memory per machine (GiB).\n"
      << "# TYPE mar_machine_mem_gb gauge\n";
  for (const MachineReport& m : result.machines) {
    out << "mar_machine_mem_gb{machine=\"" << m.name << "\"} " << fmt(m.mem_gb_mean) << '\n';
  }
  out << "# HELP mar_machine_cpu_peak Peak cores in use / capacity per machine.\n"
      << "# TYPE mar_machine_cpu_peak gauge\n";
  for (const MachineReport& m : result.machines) {
    out << "mar_machine_cpu_peak{machine=\"" << m.name << "\"} " << fmt(m.cpu_peak) << '\n';
  }
  out << "# HELP mar_machine_mem_gb_peak High-water resident memory per machine (GiB).\n"
      << "# TYPE mar_machine_mem_gb_peak gauge\n";
  for (const MachineReport& m : result.machines) {
    out << "mar_machine_mem_gb_peak{machine=\"" << m.name << "\"} " << fmt(m.mem_gb_peak)
        << '\n';
  }
  return out.str();
}

bool write_report(const ExperimentResult& result, const std::string& path) {
  const auto has_suffix = [&](const char* suffix) {
    const std::string s(suffix);
    return path.size() >= s.size() && path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  const std::string body = has_suffix(".json")   ? to_json(result)
                           : has_suffix(".prom") ? to_prometheus(result)
                                                 : to_csv(result);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

namespace {
bool write_text(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}
}  // namespace

bool write_profile_artifacts(const telemetry::ProfileReport& profile,
                             const telemetry::AllocReport& allocs,
                             const std::string& prefix, const std::string& name) {
  bool ok = write_text(prefix + ".folded", profile.folded_text());
  ok = write_text(prefix + ".speedscope.json", profile.speedscope_json(name)) && ok;
  if (!allocs.stages.empty()) {
    ok = write_text(prefix + ".heap.folded", allocs.folded_text()) && ok;
  }
  return ok;
}

}  // namespace mar::expt
