#include "expt/report.h"

#include <cstdio>
#include <sstream>

namespace mar::expt {
namespace {

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string to_csv(const ExperimentResult& result) {
  std::ostringstream out;
  out << "section,key,value\n";
  out << "qos,fps_mean," << fmt(result.fps_mean) << '\n';
  out << "qos,fps_median," << fmt(result.fps_median) << '\n';
  out << "qos,e2e_ms_mean," << fmt(result.e2e_ms_mean) << '\n';
  out << "qos,e2e_ms_median," << fmt(result.e2e_ms_median) << '\n';
  out << "qos,e2e_ms_p95," << fmt(result.e2e_ms_p95) << '\n';
  out << "qos,success_rate," << fmt(result.success_rate) << '\n';
  out << "qos,jitter_ms," << fmt(result.jitter_ms) << '\n';

  out << "\nstage,replica,machine,service_ms,queue_ms,mem_gb,cpu_share,gpu_share,"
         "drop_ratio,received,ingress_fps\n";
  for (const ServiceReport& s : result.services) {
    out << to_string(s.stage) << ',' << s.replica_index << ',' << s.machine << ','
        << fmt(s.service_ms_mean) << ',' << fmt(s.queue_ms_mean) << ',' << fmt(s.mem_gb_mean)
        << ',' << fmt(s.cpu_share) << ',' << fmt(s.gpu_share) << ',' << fmt(s.drop_ratio)
        << ',' << s.received << ',' << fmt(s.ingress_fps) << '\n';
  }

  out << "\nmachine,cpu_util,gpu_util,mem_gb\n";
  for (const MachineReport& m : result.machines) {
    out << m.name << ',' << fmt(m.cpu_util) << ',' << fmt(m.gpu_util) << ','
        << fmt(m.mem_gb_mean) << '\n';
  }
  return out.str();
}

std::string to_json(const ExperimentResult& result) {
  std::ostringstream out;
  out << "{\n  \"qos\": {"
      << "\"fps_mean\": " << fmt(result.fps_mean)
      << ", \"fps_median\": " << fmt(result.fps_median)
      << ", \"e2e_ms_mean\": " << fmt(result.e2e_ms_mean)
      << ", \"e2e_ms_p95\": " << fmt(result.e2e_ms_p95)
      << ", \"success_rate\": " << fmt(result.success_rate)
      << ", \"jitter_ms\": " << fmt(result.jitter_ms) << "},\n  \"services\": [";
  for (std::size_t i = 0; i < result.services.size(); ++i) {
    const ServiceReport& s = result.services[i];
    out << (i ? ",\n    " : "\n    ") << "{\"stage\": \"" << to_string(s.stage)
        << "\", \"replica\": " << s.replica_index << ", \"machine\": \"" << s.machine
        << "\", \"service_ms\": " << fmt(s.service_ms_mean)
        << ", \"queue_ms\": " << fmt(s.queue_ms_mean)
        << ", \"mem_gb\": " << fmt(s.mem_gb_mean) << ", \"cpu_share\": " << fmt(s.cpu_share)
        << ", \"gpu_share\": " << fmt(s.gpu_share)
        << ", \"drop_ratio\": " << fmt(s.drop_ratio) << ", \"received\": " << s.received
        << "}";
  }
  out << "\n  ],\n  \"machines\": [";
  for (std::size_t i = 0; i < result.machines.size(); ++i) {
    const MachineReport& m = result.machines[i];
    out << (i ? ",\n    " : "\n    ") << "{\"name\": \"" << m.name
        << "\", \"cpu_util\": " << fmt(m.cpu_util) << ", \"gpu_util\": " << fmt(m.gpu_util)
        << ", \"mem_gb\": " << fmt(m.mem_gb_mean) << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

bool write_report(const ExperimentResult& result, const std::string& path) {
  const bool json = path.size() >= 5 && path.substr(path.size() - 5) == ".json";
  const std::string body = json ? to_json(result) : to_csv(result);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace mar::expt
