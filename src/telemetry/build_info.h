// Build identity for the metrics plane: which exact binary produced a
// scrape, a profile, or a BENCH_*.json. Rendered as the Prometheus
// convention gauge mar_build_info{git_sha,build_type,sanitizer} 1 —
// value constant, identity in the labels — and as a /statusz header
// line. The label values are baked in at compile time by
// src/telemetry/CMakeLists.txt (MAR_GIT_SHA et al.).
#pragma once

#include <string>

namespace mar::telemetry {

struct BuildInfo {
  std::string git_sha;     // short HEAD sha, "unknown" outside a checkout
  std::string build_type;  // CMAKE_BUILD_TYPE, e.g. "RelWithDebInfo"
  std::string sanitizer;   // MAR_SANITIZE value or "none"
};

[[nodiscard]] const BuildInfo& build_info();

// One-line human rendering for /statusz and bench JSON provenance.
[[nodiscard]] std::string build_info_line();

// Register the mar_build_info gauge with MetricRegistry::instance().
// Idempotent; serve_metrics() calls it so every /metrics carries it.
void register_build_info_metric();

}  // namespace mar::telemetry
