#include "telemetry/build_info.h"

#include <mutex>

#include "telemetry/registry.h"

#ifndef MAR_GIT_SHA
#define MAR_GIT_SHA "unknown"
#endif
#ifndef MAR_BUILD_TYPE
#define MAR_BUILD_TYPE "unknown"
#endif
#ifndef MAR_SANITIZE_NAME
#define MAR_SANITIZE_NAME "none"
#endif

namespace mar::telemetry {

const BuildInfo& build_info() {
  static const BuildInfo info{MAR_GIT_SHA, MAR_BUILD_TYPE, MAR_SANITIZE_NAME};
  return info;
}

std::string build_info_line() {
  const BuildInfo& b = build_info();
  return "build: git_sha=" + b.git_sha + " build_type=" + b.build_type +
         " sanitizer=" + b.sanitizer;
}

void register_build_info_metric() {
  static std::once_flag once;
  std::call_once(once, [] {
    const BuildInfo& b = build_info();
    auto& registry = MetricRegistry::instance();
    Gauge& g = registry.gauge(
        "mar_build_info",
        "Build identity (constant 1; git_sha/build_type/sanitizer in labels)",
        {{"git_sha", b.git_sha}, {"build_type", b.build_type}, {"sanitizer", b.sanitizer}});
    // Gauge::set() is gated on the process-wide metrics switch, so an
    // early registration (before set_enabled(true)) would render 0 —
    // and reset_values() in tests would zero it again. A collect hook
    // re-asserts the constant before every scrape instead.
    registry.add_collect_hook([&g] {
      if (metrics_enabled()) g.set(1.0);
    });
  });
}

}  // namespace mar::telemetry
