#include "telemetry/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string_view>
#include <tuple>

namespace mar::telemetry {
namespace {

// Paired interval awaiting attribution. `priority` is the PathComponent
// value: lower wins (see the enum ordering in the header).
struct Interval {
  SimTime start = 0;
  SimTime end = 0;
  PathComponent component = PathComponent::kGap;
  Stage stage = Stage::kPrimary;
};

// Component of a span name, or kGap for names that carry no envelope
// time claim (instants, counters, fault-plane bookkeeping).
PathComponent component_of(std::string_view name) {
  if (name == spans::kStateFetch) return PathComponent::kStateFetch;
  if (name == spans::kRtxStall) return PathComponent::kRtxStall;
  if (name == spans::kRpcHandoff) return PathComponent::kRpc;
  if (name == spans::kSidecarQueue) return PathComponent::kQueue;
  if (name == spans::kSocketBuffer) return PathComponent::kSocketBuffer;
  if (name == spans::kService) return PathComponent::kService;
  return PathComponent::kGap;  // kLink is classified separately
}

bool is_terminal_instant(std::string_view name) {
  return name == spans::kDropBusy || name == spans::kDropStale ||
         name == spans::kDropOverflow || name == spans::kDropDown ||
         name == spans::kPacketLoss || name == spans::kTailDrop ||
         name == spans::kFetchTimeout || name == spans::kUnrecoverable;
}

}  // namespace

const char* to_string(PathComponent c) {
  switch (c) {
    case PathComponent::kStateFetch:
      return "state_fetch";
    case PathComponent::kRtxStall:
      return "rtx_stall";
    case PathComponent::kRpc:
      return "rpc";
    case PathComponent::kQueue:
      return "queue";
    case PathComponent::kSocketBuffer:
      return "socket_buffer";
    case PathComponent::kService:
      return "service";
    case PathComponent::kUpload:
      return "upload";
    case PathComponent::kNetwork:
      return "network";
    case PathComponent::kDownload:
      return "download";
    case PathComponent::kGap:
      return "gap";
  }
  return "?";
}

CriticalPath extract_critical_path(const TraceEvent* events, std::size_t n) {
  CriticalPath cp;
  if (n == 0) return cp;

  // Chronological order; ties keep record order (the ring is causal).
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return events[a].ts < events[b].ts; });

  // Envelope + identity + verdict.
  SimTime first_ts = events[order.front()].ts;
  SimTime last_ts = events[order.front()].ts;
  SimTime e2e_begin = -1;
  SimTime e2e_end = -1;
  for (std::size_t idx : order) {
    const TraceEvent& e = events[idx];
    if (e.phase == TracePhase::kCounter) continue;
    first_ts = std::min(first_ts, e.ts);
    const SimTime ev_end = e.phase == TracePhase::kComplete ? e.ts + e.dur : e.ts;
    last_ts = std::max(last_ts, ev_end);
    if (cp.trace_id == 0 && e.trace_id != 0) cp.trace_id = e.trace_id;
    if (cp.client == ClientId::kInvalid || cp.client == 0) cp.client = e.client;
    if (cp.frame == FrameId::kInvalid || cp.frame == 0) cp.frame = e.frame;
    const std::string_view name(e.name);
    if (name == spans::kFrameE2e) {
      if (e.phase == TracePhase::kBegin) e2e_begin = e.ts;
      if (e.phase == TracePhase::kEnd) e2e_end = e.ts;
    }
    if (e.phase == TracePhase::kInstant && is_terminal_instant(name)) {
      cp.verdict = std::string(name);
    }
  }
  cp.start = e2e_begin >= 0 ? e2e_begin : first_ts;
  cp.end = e2e_end >= 0 ? e2e_end : last_ts;
  if (e2e_end >= 0) {
    cp.delivered = true;
    cp.verdict = "result";
  }
  if (cp.end < cp.start) cp.end = cp.start;

  // Pair begin/end per {track, name, stage}; collect intervals.
  std::vector<Interval> intervals;
  std::vector<Interval> links;  // classified upload/network/download below
  std::map<std::tuple<std::uint32_t, std::string_view, int>, std::vector<Interval>> open;
  for (std::size_t idx : order) {
    const TraceEvent& e = events[idx];
    const std::string_view name(e.name);
    if (name == spans::kFrameE2e || e.phase == TracePhase::kCounter ||
        e.phase == TracePhase::kInstant) {
      continue;
    }
    if (e.phase == TracePhase::kComplete) {
      Interval iv{e.ts, e.ts + e.dur, component_of(name), e.stage};
      if (name == spans::kLink) {
        links.push_back(iv);
      } else if (name == spans::kRtxStall) {
        intervals.push_back(iv);
      } else if (iv.component != PathComponent::kGap) {
        intervals.push_back(iv);
      }
      continue;
    }
    const PathComponent comp = component_of(name);
    if (comp == PathComponent::kGap && name != spans::kLink) continue;  // not a path span
    const auto key = std::make_tuple(e.track, name, static_cast<int>(e.stage));
    if (e.phase == TracePhase::kBegin) {
      open[key].push_back(Interval{e.ts, -1, comp, e.stage});
    } else {  // kEnd
      auto it = open.find(key);
      if (it == open.end() || it->second.empty()) {
        // An end whose begin lives on another track — the failover
        // respawn finishing a dead replica's span. No interval.
        ++cp.orphan_ends;
        continue;
      }
      Interval iv = it->second.back();
      it->second.pop_back();
      iv.end = e.ts;
      intervals.push_back(iv);
    }
  }
  // Begins that never closed: the replica died or the run was clipped
  // mid-flight. The wait was real up to the frame's last event.
  for (auto& [key, stack] : open) {
    for (Interval iv : stack) {
      ++cp.open_spans;
      iv.end = std::max(cp.end, iv.start);
      intervals.push_back(iv);
    }
  }

  // Classify link hops: first transit is the client upload; the final
  // transit of a delivered frame carries the result back down.
  if (!links.empty()) {
    std::stable_sort(links.begin(), links.end(),
                     [](const Interval& a, const Interval& b) { return a.start < b.start; });
    for (std::size_t i = 0; i < links.size(); ++i) {
      Interval iv = links[i];
      if (i == 0) {
        iv.component = PathComponent::kUpload;
      } else if (cp.delivered && i + 1 == links.size()) {
        iv.component = PathComponent::kDownload;
      } else {
        iv.component = PathComponent::kNetwork;
      }
      intervals.push_back(iv);
    }
  }

  // Attribute each elementary slice of the envelope to the covering
  // interval with the strongest claim (lowest PathComponent value).
  std::vector<SimTime> cuts;
  cuts.reserve(intervals.size() * 2 + 2);
  cuts.push_back(cp.start);
  cuts.push_back(cp.end);
  for (const Interval& iv : intervals) {
    if (iv.end <= cp.start || iv.start >= cp.end) continue;
    cuts.push_back(std::clamp(iv.start, cp.start, cp.end));
    cuts.push_back(std::clamp(iv.end, cp.start, cp.end));
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const SimTime lo = cuts[i];
    const SimTime hi = cuts[i + 1];
    if (hi <= lo) continue;
    PathComponent winner = PathComponent::kGap;
    Stage win_stage = Stage::kPrimary;
    for (const Interval& iv : intervals) {
      if (iv.start <= lo && iv.end >= hi &&
          static_cast<int>(iv.component) < static_cast<int>(winner)) {
        winner = iv.component;
        win_stage = iv.stage;
      }
    }
    const double ms = to_millis(hi - lo);
    cp.blame_ms[static_cast<std::size_t>(winner)] += ms;
    if (winner == PathComponent::kQueue || winner == PathComponent::kSocketBuffer) {
      cp.stage_queue_ms[static_cast<std::size_t>(win_stage)] += ms;
    } else if (winner == PathComponent::kService) {
      cp.stage_service_ms[static_cast<std::size_t>(win_stage)] += ms;
    }
    if (!cp.segments.empty() && cp.segments.back().component == winner &&
        cp.segments.back().stage == win_stage && cp.segments.back().end == lo) {
      cp.segments.back().end = hi;
    } else {
      cp.segments.push_back(PathSegment{lo, hi, winner, win_stage});
    }
  }
  return cp;
}

std::string render_critical_path(const CriticalPath& cp) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "critical path trace#%u client %u frame %llu: %.3f ms (%s)\n",
                cp.trace_id, cp.client, static_cast<unsigned long long>(cp.frame),
                cp.total_ms(), cp.verdict.c_str());
  out += buf;
  for (const PathSegment& seg : cp.segments) {
    std::snprintf(buf, sizeof(buf), "  %10.3f .. %10.3f ms  %-13s %-9s %8.3f ms\n",
                  to_millis(seg.start - cp.start), to_millis(seg.end - cp.start),
                  to_string(seg.component),
                  seg.component == PathComponent::kQueue ||
                          seg.component == PathComponent::kSocketBuffer ||
                          seg.component == PathComponent::kService
                      ? to_string(seg.stage)
                      : "-",
                  seg.dur_ms());
    out += buf;
  }
  out += "blame:";
  const double total = cp.total_ms();
  for (int c = 0; c < kNumPathComponents; ++c) {
    const double ms = cp.blame_ms[static_cast<std::size_t>(c)];
    if (ms <= 0.0) continue;
    std::snprintf(buf, sizeof(buf), " %s %.3f ms (%.1f%%)",
                  to_string(static_cast<PathComponent>(c)), ms,
                  total > 0 ? 100.0 * ms / total : 0.0);
    out += buf;
  }
  out += "\nper-stage queue vs service self-time:\n";
  for (int s = 0; s < kNumStages; ++s) {
    const double q = cp.stage_queue_ms[static_cast<std::size_t>(s)];
    const double sv = cp.stage_service_ms[static_cast<std::size_t>(s)];
    if (q <= 0.0 && sv <= 0.0) continue;
    std::snprintf(buf, sizeof(buf), "  %-9s queue %8.3f ms  service %8.3f ms\n",
                  to_string(static_cast<Stage>(s)), q, sv);
    out += buf;
  }
  if (cp.open_spans || cp.orphan_ends) {
    std::snprintf(buf, sizeof(buf), "malformed spans: %d open (clamped), %d orphan ends\n",
                  cp.open_spans, cp.orphan_ends);
    out += buf;
  }
  return out;
}

}  // namespace mar::telemetry
