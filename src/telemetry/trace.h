// Per-frame distributed tracing for the scAtteR pipeline.
//
// A low-overhead span recorder: every hop of a traced frame — sidecar
// enqueue/dequeue, staleness drop, compute start/finish, RPC hand-off,
// link transit, state-fetch round trip — records an event keyed by
// {client, frame, stage, name} into one process-wide preallocated
// buffer. Recording is a single relaxed load when tracing is disabled
// and an atomic slot claim plus a struct store when enabled, so the
// tracer can stay compiled into every hot path.
//
// Timestamps are caller-supplied SimTime nanoseconds: virtual time in
// the simulator, wall-clock (trace_wallclock_now()) in live mode. The
// recorder never allocates after reserve() and never drops silently —
// events past capacity are counted in dropped().
//
// Exporters:
//  * chrome_trace_json() — Chrome trace-event JSON, loadable in
//    Perfetto (ui.perfetto.dev); one track ("process") per service
//    replica, client, or transport, named via set_track_name().
//  * prometheus_text() — Prometheus-style plaintext gauges aggregated
//    from the recorded spans (per-stage latency accumulators, drop and
//    loss counters). Complements expt::to_prometheus(), which exports
//    the counter-based HostStats view of the same run.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "telemetry/stats.h"

namespace mar::telemetry {

enum class TracePhase : std::uint8_t {
  kBegin = 0,     // span opens; matched with the next kEnd of the same key
  kEnd = 1,       // span closes
  kInstant = 2,   // point event (drops, losses, timeouts)
  kComplete = 3,  // span with a known duration at record time (link transit)
  kCounter = 4,   // sampled value (queue depth, bytes)
};

// Canonical span/event names. Instrumentation sites pass these
// constants so exporters and tests can match by string content.
namespace spans {
inline constexpr const char* kService = "service";            // dispatch -> finish
inline constexpr const char* kSidecarQueue = "sidecar_queue";  // enqueue -> dequeue
inline constexpr const char* kSocketBuffer = "socket_buffer";  // scAtteR busy buffer
inline constexpr const char* kRpcHandoff = "rpc_handoff";      // sidecar -> service RPC
inline constexpr const char* kStateFetch = "state_fetch";      // matching <-> sift loop
inline constexpr const char* kLink = "link";                   // network transit
inline constexpr const char* kFrameE2e = "frame_e2e";          // capture -> result
inline constexpr const char* kDropBusy = "drop_busy";
inline constexpr const char* kDropStale = "drop_stale";
inline constexpr const char* kDropOverflow = "drop_overflow";
inline constexpr const char* kDropDown = "drop_down";
inline constexpr const char* kPacketLoss = "pkt_loss";
inline constexpr const char* kTailDrop = "pkt_taildrop";
inline constexpr const char* kFetchTimeout = "fetch_timeout";
inline constexpr const char* kUdpTx = "udp_tx";
inline constexpr const char* kUdpRx = "udp_rx";
// Live-transport recovery markers (value carries the message id):
// a NACK sent by a receiver, fragments retransmitted by the sender in
// answer, a single-loss group rebuilt from XOR parity, and a frame
// abandoned after the retransmission budget ran dry.
inline constexpr const char* kUdpNack = "udp_nack";
inline constexpr const char* kUdpRtx = "udp_rtx";
inline constexpr const char* kFecRepair = "fec_repair";
inline constexpr const char* kUnrecoverable = "frame_unrecoverable";
// Portion of a link transit spent waiting out NACK retransmission
// rounds (sim::LinkModel folds the recovery wait into the link span's
// duration; this complete span marks the stalled tail so the
// critical-path extractor can blame recovery separately from transit).
inline constexpr const char* kRtxStall = "rtx_stall";
inline constexpr const char* kFault = "fault";        // injected fault window
inline constexpr const char* kFailover = "failover";  // suspect -> respawn span
// Control-plane actions (ctrl::ScalePolicy / ctrl::ReOptimizer): why a
// replica appeared, drained, or moved, as forensics-timeline instants.
inline constexpr const char* kCtrlScaleUp = "ctrl_scale_up";
inline constexpr const char* kCtrlDrain = "ctrl_drain";      // drain began
inline constexpr const char* kCtrlRetire = "ctrl_retire";    // drain completed
inline constexpr const char* kCtrlReplan = "ctrl_replan";    // placement re-applied
inline constexpr const char* kCtrlBlocked = "ctrl_blocked";  // action withheld
inline constexpr const char* kCtrlMove = "ctrl_move";        // replica rebuilt elsewhere
inline constexpr const char* kCtrlPredict = "ctrl_predict";  // burn+trend fired early
// Synthetic instant appended when a flight-recorder buffer is promoted
// into the durable ring; `value` holds the RetainReason.
inline constexpr const char* kRetained = "retained";
}  // namespace spans

// Head-sampling default shared by core::ClientConfig::trace_sample_every,
// expt::ExperimentConfig::trace_sample_every, and the experiment_cli
// --trace_sample flag: every frame is stamped when the tracer is on.
// Tail-based retention (expt::TailRetentionConfig) composes with head
// sampling instead of replacing it — head-sampled frames keep going
// straight to the durable ring; the other frames are flight-recorded
// and only promoted when the retention policy keeps them.
inline constexpr std::uint32_t kDefaultTraceSampleEvery = 1;

// Well-known track ids. Service replicas use their InstanceId value as
// the track, so these start well above any realistic replica count.
inline constexpr std::uint32_t kNetworkTrack = 9000;
inline constexpr std::uint32_t kEngineTrack = 9100;    // single-process vision engine
inline constexpr std::uint32_t kFaultTrack = 9200;     // injected faults / recovery
inline constexpr std::uint32_t kCtrlTrack = 9300;      // control-plane actions
inline constexpr std::uint32_t kClientTrackBase = 10000;  // + ClientId

struct TraceEvent {
  SimTime ts = 0;        // ns (virtual or wall-clock)
  SimDuration dur = 0;   // kComplete only
  double value = 0.0;    // kCounter value; message-kind tag on spans
  const char* name = ""; // static-lifetime string (spans:: constants)
  std::uint64_t frame = FrameId::kInvalid;
  std::uint32_t client = ClientId::kInvalid;
  std::uint32_t track = 0;
  std::uint32_t trace_id = 0;  // FrameHeader TraceContext id; 0 = untraced
  Stage stage = Stage::kPrimary;
  TracePhase phase = TracePhase::kInstant;
  std::uint16_t lane = 0;  // thread-pool lane of the recording thread
};

// Matched begin/end spans of one name on one track, in milliseconds.
struct TrackSpanStats {
  std::uint32_t track = 0;
  Stage stage = Stage::kPrimary;
  Accumulator ms;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 19;  // ~29 MB of events

  // The process-wide recorder every instrumentation site writes to.
  static Tracer& instance();

  // Enabling with an empty buffer reserves kDefaultCapacity.
  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Preallocate space for `capacity` events. Not thread-safe against
  // concurrent record() calls; do it before traffic flows.
  void reserve(std::size_t capacity);
  // Forget all recorded events (capacity is kept). Same caveat.
  void clear();

  // --- recording (thread-safe, wait-free) ----------------------------
  // `trace_id` ties the event to a FrameHeader's TraceContext. Events
  // with a nonzero id are offered to the FlightRecorder first (tail
  // retention); untracked ids fall through to the durable ring.
  void begin(std::uint32_t track, const char* name, SimTime ts, ClientId client,
             FrameId frame, Stage stage, double value = 0.0, std::uint32_t trace_id = 0) {
    record(track, name, ts, 0, client, frame, stage, TracePhase::kBegin, value, trace_id);
  }
  void end(std::uint32_t track, const char* name, SimTime ts, ClientId client,
           FrameId frame, Stage stage, double value = 0.0, std::uint32_t trace_id = 0) {
    record(track, name, ts, 0, client, frame, stage, TracePhase::kEnd, value, trace_id);
  }
  void instant(std::uint32_t track, const char* name, SimTime ts, ClientId client,
               FrameId frame, Stage stage, double value = 0.0, std::uint32_t trace_id = 0) {
    record(track, name, ts, 0, client, frame, stage, TracePhase::kInstant, value, trace_id);
  }
  void complete(std::uint32_t track, const char* name, SimTime ts, SimDuration dur,
                ClientId client, FrameId frame, Stage stage, double value = 0.0,
                std::uint32_t trace_id = 0) {
    record(track, name, ts, dur, client, frame, stage, TracePhase::kComplete, value,
           trace_id);
  }
  void counter(std::uint32_t track, const char* name, SimTime ts, double value) {
    record(track, name, ts, 0, ClientId::invalid(), FrameId::invalid(), Stage::kPrimary,
           TracePhase::kCounter, value, 0);
  }

  // Bulk transfer into the durable ring (flight-recorder promotion):
  // claims a contiguous block of slots and copies the events verbatim.
  // Returns how many fit; the remainder counts toward dropped().
  std::size_t append(const TraceEvent* events, std::size_t n);

  // Nonzero id for a FrameHeader's TraceContext.
  [[nodiscard]] std::uint32_t next_trace_id() {
    const std::uint32_t id = next_trace_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    return id == 0 ? 1 : id;
  }

  // --- track metadata -------------------------------------------------
  void set_track_name(std::uint32_t track, std::string name);
  [[nodiscard]] std::string track_name(std::uint32_t track) const;
  [[nodiscard]] std::unordered_map<std::uint32_t, std::string> track_names() const;

  // --- inspection ------------------------------------------------------
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return events_.size(); }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  // Copy of the recorded events in record order.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  // Matched spans named `name`, grouped per track, restricted to spans
  // whose END falls at/after `min_end_ts` — the same admission rule as
  // a histogram that was reset at `min_end_ts`, so trace-derived means
  // are comparable 1:1 with HostStats means over a measurement window.
  [[nodiscard]] std::vector<TrackSpanStats> replica_spans(
      const char* name, SimTime min_end_ts = std::numeric_limits<SimTime>::min()) const;

  // Pooled per-stage latency of matched spans named `name` (ms).
  [[nodiscard]] std::array<Accumulator, kNumStages> stage_spans(
      const char* name, SimTime min_end_ts = std::numeric_limits<SimTime>::min()) const;

  // --- exporters --------------------------------------------------------
  [[nodiscard]] std::string chrome_trace_json() const;
  bool write_chrome_trace(const std::string& path) const;
  [[nodiscard]] std::string prometheus_text() const;
  // Line-oriented raw event log ("# mar-trace-events v1"), the format
  // the frame_forensics CLI reads back (expt::load_trace_log). Unlike
  // the Chrome JSON, it keeps unmatched begins and trace ids verbatim.
  [[nodiscard]] std::string event_log_text() const;
  bool write_event_log(const std::string& path) const;

 private:
  void record(std::uint32_t track, const char* name, SimTime ts, SimDuration dur,
              ClientId client, FrameId frame, Stage stage, TracePhase phase, double value,
              std::uint32_t trace_id);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint32_t> next_trace_id_{0};
  std::vector<TraceEvent> events_;  // fixed capacity; slots claimed via next_

  mutable std::mutex meta_mu_;
  std::unordered_map<std::uint32_t, std::string> track_names_;
};

// Monotonic wall-clock nanoseconds since the first call, for tracing
// live (non-simulated) code paths on the same SimTime axis.
[[nodiscard]] SimTime trace_wallclock_now();

}  // namespace mar::telemetry
