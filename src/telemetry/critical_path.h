// Critical-path extraction: turn one traced frame's raw span soup into
// a blocking chain with every nanosecond blamed on exactly one
// component.
//
// The Tracer records what each hop *did* (queue waits, service spans,
// link transits, fetch round trips) across many tracks; this module
// answers what the frame *waited on*. The extractor pairs begin/end
// events per {track, name, stage} (the same pairing rule as
// expt::reconstruct_frame), clips everything to the frame's envelope
// (frame_e2e when present, first..last event otherwise), and then
// attributes each elementary time slice to the highest-priority span
// covering it:
//
//   state_fetch > rtx_stall > rpc_handoff > sidecar_queue >
//   socket_buffer > service > link (upload/network/download) > gap
//
// Priority encodes nesting: a sift-side service span recorded inside a
// matching state-fetch round trip is the *mechanism* of the fetch, not
// an independent cost, so its slices fold into kStateFetch — which is
// exactly how the paper's Fig. 2/8 decompositions count state
// handling. Service time that remains after higher-priority spans are
// carved out is true self-time, reported per stage next to the queue
// wait so "slow stage" and "backed-up stage" stay distinguishable.
//
// Malformed timelines are handled explicitly rather than silently:
// a begin with no end (run clipped mid-flight, or the replica died) is
// clamped to the frame's last event and counted in open_spans; an end
// with no begin (the PR 4 failover respawn finishes a span whose begin
// happened on the dead replica's track) is counted in orphan_ends and
// contributes no interval. A frame whose chain ends at a drop_*/loss
// instant keeps that name as its verdict, so blame reports can split
// delivered from dropped populations.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "telemetry/trace.h"

namespace mar::telemetry {

// Where a slice of a frame's lifetime went. Order is the attribution
// priority, strongest claim first.
enum class PathComponent : std::uint8_t {
  kStateFetch = 0,   // matching <-> sift state round trip (everything inside)
  kRtxStall,         // link transit stalled on NACK retransmission rounds
  kRpc,              // sidecar -> service RPC hand-off overhead
  kQueue,            // sidecar queue wait
  kSocketBuffer,     // scAtteR busy-buffer wait ahead of dispatch
  kService,          // stage compute self-time
  kUpload,           // first link hop: client -> edge
  kNetwork,          // inter-stage link transit
  kDownload,         // last link hop of a delivered frame: result -> client
  kGap,              // envelope time no recorded span covers
};
inline constexpr int kNumPathComponents = 10;

[[nodiscard]] const char* to_string(PathComponent c);

// One maximal run of envelope time attributed to a single component.
struct PathSegment {
  SimTime start = 0;
  SimTime end = 0;
  PathComponent component = PathComponent::kGap;
  Stage stage = Stage::kPrimary;  // stage of the winning span

  [[nodiscard]] double dur_ms() const { return to_millis(end - start); }
};

struct CriticalPath {
  std::uint32_t trace_id = 0;
  std::uint32_t client = 0;
  std::uint64_t frame = 0;
  SimTime start = 0;  // envelope: frame_e2e begin, else first event
  SimTime end = 0;    // frame_e2e end, else last event
  bool delivered = false;  // frame_e2e closed
  // "result", a terminal drop/loss name ("drop_stale", "pkt_loss",
  // ...), or "incomplete".
  std::string verdict = "incomplete";

  // Envelope milliseconds per component; sums to total_ms().
  std::array<double, kNumPathComponents> blame_ms{};
  // Queue wait (sidecar queue + socket buffer) vs service self-time,
  // split per pipeline stage.
  std::array<double, kNumStages> stage_queue_ms{};
  std::array<double, kNumStages> stage_service_ms{};

  // Malformed-timeline accounting (see file comment).
  int open_spans = 0;   // begins clamped to the envelope end
  int orphan_ends = 0;  // ends with no matching begin on their track

  std::vector<PathSegment> segments;  // sorted, non-overlapping, covering

  [[nodiscard]] double total_ms() const { return to_millis(end - start); }
  [[nodiscard]] double attributed_ms() const {
    return total_ms() - blame_ms[static_cast<std::size_t>(PathComponent::kGap)];
  }
  [[nodiscard]] double blame(PathComponent c) const {
    return blame_ms[static_cast<std::size_t>(c)];
  }
};

// Extract the critical path from the events of ONE frame (all sharing
// a trace_id; callers filter). Events may arrive in any order; ties on
// timestamp keep record order, matching the Tracer ring.
[[nodiscard]] CriticalPath extract_critical_path(const TraceEvent* events, std::size_t n);

inline CriticalPath extract_critical_path(const std::vector<TraceEvent>& events) {
  return extract_critical_path(events.data(), events.size());
}

// Human-readable single-frame blame: the segment chain plus a
// per-component self-time table (frame_forensics --blame).
[[nodiscard]] std::string render_critical_path(const CriticalPath& cp);

}  // namespace mar::telemetry
