#include "telemetry/procstat.h"

#include <cstdio>
#include <cstring>
#include <string>

#include <sys/resource.h>
#include <unistd.h>

namespace mar::telemetry {
namespace {

// Reads /proc/self/stat. The comm field (2) may contain spaces, so
// parsing starts after the last ')'. Field numbers below are 1-based
// per proc(5): minflt=10, majflt=12, utime=14, stime=15, threads=20,
// vsize=23, rss=24 (pages).
bool read_proc_self_stat(const std::string& stat_path, ProcStatSample* out) {
#ifdef __linux__
  std::FILE* f = std::fopen(stat_path.c_str(), "r");
  if (f == nullptr) return false;
  char buf[1024];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (n == 0) return false;
  buf[n] = '\0';
  const char* p = std::strrchr(buf, ')');
  if (p == nullptr) return false;
  ++p;  // now at " S ppid ..." — field 3 onwards

  unsigned long long minflt = 0, majflt = 0, utime = 0, stime = 0, vsize = 0;
  long long rss_pages = 0, threads = 0;
  // Fields 3..24 after the comm: state + 21 numeric columns.
  char state = 0;
  long long skip;
  const int parsed = std::sscanf(
      p, " %c %lld %lld %lld %lld %lld %lld %llu %lld %llu %lld %llu %llu %lld %lld %lld %lld "
         "%lld %lld %lld %llu %lld",
      &state, &skip, &skip, &skip, &skip, &skip, &skip,  // ppid..tpgid, flags
      &minflt, &skip, &majflt, &skip,                    // minflt cminflt majflt cmajflt
      &utime, &stime, &skip, &skip,                      // utime stime cutime cstime
      &skip, &skip, &threads, &skip,                     // priority nice threads itrealvalue
      &skip,                                             // starttime
      &vsize, &rss_pages);
  if (parsed < 22) return false;

  const double tick = static_cast<double>(sysconf(_SC_CLK_TCK));
  const auto page = static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
  out->cpu_seconds = (static_cast<double>(utime) + static_cast<double>(stime)) / tick;
  out->minor_faults = minflt;
  out->major_faults = majflt;
  out->num_threads = static_cast<std::uint32_t>(threads > 0 ? threads : 0);
  out->vsz_bytes = vsize;
  out->rss_bytes = static_cast<std::uint64_t>(rss_pages > 0 ? rss_pages : 0) * page;
  return true;
#else
  (void)stat_path;
  (void)out;
  return false;
#endif
}

// Portable fallback: getrusage gives CPU time and peak (not current) RSS.
void read_rusage(ProcStatSample* out) {
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return;
  out->cpu_seconds = static_cast<double>(ru.ru_utime.tv_sec + ru.ru_stime.tv_sec) +
                     static_cast<double>(ru.ru_utime.tv_usec + ru.ru_stime.tv_usec) / 1e6;
  out->rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KB on Linux
  out->minor_faults = static_cast<std::uint64_t>(ru.ru_minflt);
  out->major_faults = static_cast<std::uint64_t>(ru.ru_majflt);
}

}  // namespace

ProcStatSample ProcStatReader::sample() {
  ProcStatSample s;
  if (!read_proc_self_stat(stat_path_, &s)) read_rusage(&s);
  s.ok = s.cpu_seconds > 0.0 || s.rss_bytes > 0;

  const auto now = std::chrono::steady_clock::now();
  if (last_cpu_seconds_ >= 0.0) {
    const double wall_s = std::chrono::duration<double>(now - last_wall_).count();
    if (wall_s > 0.0) {
      s.cpu_percent = 100.0 * (s.cpu_seconds - last_cpu_seconds_) / wall_s;
      if (s.cpu_percent < 0.0) s.cpu_percent = 0.0;
    }
  }
  last_cpu_seconds_ = s.cpu_seconds;
  last_wall_ = now;
  return s;
}

ProcStatSampler::ProcStatSampler(MetricRegistry& registry)
    : registry_(registry),
      cpu_seconds_(registry.gauge("mar_process_cpu_seconds_total",
                                  "Cumulative user+system CPU time of this process.")),
      cpu_percent_(registry.gauge("mar_process_cpu_percent",
                                  "Process CPU use since the previous sample (percent of "
                                  "one core).")),
      rss_bytes_(registry.gauge("mar_process_rss_bytes", "Resident set size.")),
      vsz_bytes_(registry.gauge("mar_process_vsz_bytes", "Virtual memory size.")),
      major_faults_(registry.gauge("mar_process_major_faults_total",
                                   "Major page faults since process start.")),
      threads_(registry.gauge("mar_process_threads", "OS threads in this process.")) {}

ProcStatSampler::~ProcStatSampler() { stop(); }

void ProcStatSampler::publish() {
  const ProcStatSample s = reader_.sample();
  if (!s.ok) return;
  cpu_seconds_.set(s.cpu_seconds);
  cpu_percent_.set(s.cpu_percent);
  rss_bytes_.set(static_cast<double>(s.rss_bytes));
  vsz_bytes_.set(static_cast<double>(s.vsz_bytes));
  major_faults_.set(static_cast<double>(s.major_faults));
  threads_.set(static_cast<double>(s.num_threads));
}

void ProcStatSampler::start(std::chrono::milliseconds interval) {
  if (running_.exchange(true)) return;
  interval_ = interval;
  stop_.store(false);
  publish();
  thread_ = std::thread([this] {
    while (!stop_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(interval_);
      if (stop_.load(std::memory_order_relaxed)) break;
      publish();
    }
  });
}

void ProcStatSampler::stop() {
  if (!running_.load()) return;
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  running_.store(false);
}

}  // namespace mar::telemetry
