// Real-OS resource sampling for live (non-simulated) runs: the process's
// CPU time, RSS/VSZ, faults, and thread count from /proc/self (Linux),
// falling back to getrusage() elsewhere. The ProcStatSampler periodically
// publishes these as registry gauges so a /metrics scrape of a live
// pipeline shows the same CPU%/memory signals the simulator derives
// from hw::ResourcePool — one metrics plane across both substrates.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "telemetry/registry.h"

namespace mar::telemetry {

struct ProcStatSample {
  bool ok = false;
  double cpu_seconds = 0.0;   // cumulative user+system CPU time
  double cpu_percent = 0.0;   // CPU time / wall time since the previous sample
  std::uint64_t rss_bytes = 0;
  std::uint64_t vsz_bytes = 0;
  std::uint64_t minor_faults = 0;
  std::uint64_t major_faults = 0;
  std::uint32_t num_threads = 0;
};

// Stateful reader: cpu_percent is the delta against the previous call
// (0 on the first). Safe to call from one thread at a time.
// `stat_path` overrides /proc/self/stat — tests point it at a missing
// or malformed file to exercise the getrusage() fallback.
class ProcStatReader {
 public:
  ProcStatReader() = default;
  explicit ProcStatReader(std::string stat_path) : stat_path_(std::move(stat_path)) {}

  ProcStatSample sample();

 private:
  std::string stat_path_ = "/proc/self/stat";
  double last_cpu_seconds_ = -1.0;
  std::chrono::steady_clock::time_point last_wall_{};
};

// Background sampler feeding the registry:
//   mar_process_cpu_seconds_total, mar_process_cpu_percent,
//   mar_process_rss_bytes, mar_process_vsz_bytes,
//   mar_process_major_faults_total, mar_process_threads
class ProcStatSampler {
 public:
  explicit ProcStatSampler(MetricRegistry& registry = MetricRegistry::instance());
  ~ProcStatSampler();

  ProcStatSampler(const ProcStatSampler&) = delete;
  ProcStatSampler& operator=(const ProcStatSampler&) = delete;

  // Start the sampling thread (no-op if already running). Publishes one
  // sample synchronously before returning so a scrape races nothing.
  void start(std::chrono::milliseconds interval = std::chrono::milliseconds(500));
  void stop();
  [[nodiscard]] bool running() const { return running_.load(std::memory_order_relaxed); }

 private:
  void publish();

  MetricRegistry& registry_;
  ProcStatReader reader_;
  Gauge& cpu_seconds_;
  Gauge& cpu_percent_;
  Gauge& rss_bytes_;
  Gauge& vsz_bytes_;
  Gauge& major_faults_;
  Gauge& threads_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::chrono::milliseconds interval_{500};
  std::thread thread_;
};

}  // namespace mar::telemetry
