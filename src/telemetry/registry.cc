#include "telemetry/registry.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace mar::telemetry {

namespace internal {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace internal

namespace {

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// Prometheus exposition format: inside a label value, backslash, double
// quote, and newline must be escaped (\\, \", \n).
std::string escape_label_value(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

// HELP text escapes only backslash and newline (quotes are legal there).
std::string escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += labels[i].first + "=\"" + escape_label_value(labels[i].second) + "\"";
  }
  return out + "}";
}

// Label text with one extra pair appended (histogram `le` buckets).
std::string render_labels_plus(const Labels& labels, const std::string& key,
                               const std::string& value) {
  Labels all = labels;
  all.emplace_back(key, value);
  return render_labels(all);
}

}  // namespace

const std::vector<double>& FixedHistogram::default_latency_ms_bounds() {
  static const std::vector<double> bounds = {0.5,  1.0,   2.0,   5.0,   10.0,  20.0,  50.0,
                                             100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0};
  return bounds;
}

FixedHistogram::FixedHistogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  for (auto& s : shards_) {
    s.buckets = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
  exemplars_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

std::size_t FixedHistogram::bucket_of(double v) const {
  // Few dozen buckets at most: a linear scan beats binary search on
  // branch prediction and keeps the update path trivial.
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  return i;
}

std::uint64_t FixedHistogram::count() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) {
    for (const auto& b : s.buckets) n += b.load(std::memory_order_relaxed);
  }
  return n;
}

double FixedHistogram::sum() const {
  double total = 0.0;
  for (const auto& s : shards_) total += s.sum.load();
  return total;
}

std::vector<std::uint64_t> FixedHistogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (const auto& s : shards_) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::vector<FixedHistogram::Exemplar> FixedHistogram::exemplars() const {
  std::vector<Exemplar> out(exemplars_.size());
  for (std::size_t i = 0; i < exemplars_.size(); ++i) {
    const std::uint64_t packed = exemplars_[i].load(std::memory_order_relaxed);
    out[i].trace_id = static_cast<std::uint32_t>(packed & 0xffffffffu);
    const auto bits = static_cast<std::uint32_t>(packed >> 32);
    float f;
    __builtin_memcpy(&f, &bits, sizeof(f));
    out[i].value = static_cast<double>(f);
  }
  return out;
}

double FixedHistogram::quantile(double q) const {
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t prev = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    // +Inf bucket: report its lower bound (no upper edge to lerp to).
    if (i == bounds_.size()) return lo;
    const double hi = bounds_[i];
    const double frac =
        (rank - static_cast<double>(prev)) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void FixedHistogram::reset() {
  for (auto& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0.0);
  }
  for (auto& e : exemplars_) e.store(0, std::memory_order_relaxed);
}

MetricRegistry& MetricRegistry::instance() {
  static MetricRegistry registry;
  return registry;
}

MetricRegistry::Family& MetricRegistry::family_of(const std::string& name,
                                                  const std::string& help, Kind kind) {
  for (auto& fam : families_) {
    if (fam->name == name) {
      if (fam->kind != kind) {
        throw std::logic_error("metric '" + name + "' re-registered with a different type");
      }
      return *fam;
    }
  }
  auto fam = std::make_unique<Family>();
  fam->name = name;
  fam->help = help;
  fam->kind = kind;
  families_.push_back(std::move(fam));
  return *families_.back();
}

MetricRegistry::Child& MetricRegistry::child_of(Family& fam, const Labels& labels) {
  for (auto& child : fam.children) {
    if (child->labels == labels) return *child;
  }
  auto child = std::make_unique<Child>();
  child->labels = labels;
  child->label_text = render_labels(labels);
  fam.children.push_back(std::move(child));
  return *fam.children.back();
}

Counter& MetricRegistry::counter(const std::string& name, const std::string& help,
                                 const Labels& labels) {
  std::lock_guard<std::mutex> lk(mu_);
  Child& child = child_of(family_of(name, help, Kind::kCounter), labels);
  if (!child.counter) child.counter = std::unique_ptr<Counter>(new Counter());
  return *child.counter;
}

Gauge& MetricRegistry::gauge(const std::string& name, const std::string& help,
                             const Labels& labels) {
  std::lock_guard<std::mutex> lk(mu_);
  Child& child = child_of(family_of(name, help, Kind::kGauge), labels);
  if (!child.gauge) child.gauge = std::unique_ptr<Gauge>(new Gauge());
  return *child.gauge;
}

FixedHistogram& MetricRegistry::histogram(const std::string& name, const std::string& help,
                                          std::vector<double> bounds, const Labels& labels) {
  std::lock_guard<std::mutex> lk(mu_);
  Child& child = child_of(family_of(name, help, Kind::kHistogram), labels);
  if (!child.histogram) {
    child.histogram = std::unique_ptr<FixedHistogram>(new FixedHistogram(std::move(bounds)));
  }
  return *child.histogram;
}

void MetricRegistry::add_collect_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lk(hooks_mu_);
  collect_hooks_.push_back(std::move(hook));
}

void MetricRegistry::run_collect_hooks() const {
  // Copy under the list lock, run unlocked: hooks call counter()/
  // gauge() (which takes mu_) to sync their series pre-scrape.
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lk(hooks_mu_);
    hooks = collect_hooks_;
  }
  for (const auto& hook : hooks) hook();
}

std::string MetricRegistry::prometheus_text() const {
  run_collect_hooks();
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream out;
  for (const auto& fam : families_) {
    const char* type = fam->kind == Kind::kCounter     ? "counter"
                       : fam->kind == Kind::kGauge     ? "gauge"
                                                       : "histogram";
    out << "# HELP " << fam->name << ' ' << escape_help(fam->help) << '\n';
    out << "# TYPE " << fam->name << ' ' << type << '\n';
    for (const auto& child : fam->children) {
      switch (fam->kind) {
        case Kind::kCounter:
          out << fam->name << child->label_text << ' ' << child->counter->value() << '\n';
          break;
        case Kind::kGauge:
          out << fam->name << child->label_text << ' ' << fmt(child->gauge->value()) << '\n';
          break;
        case Kind::kHistogram: {
          const FixedHistogram& h = *child->histogram;
          const auto counts = h.bucket_counts();
          const auto exemplars = h.exemplars();
          // An OpenMetrics exemplar suffix on a bucket line:
          //   name_bucket{le="x"} 7 # {trace_id="42"} 3.5
          auto exemplar_suffix = [&](std::size_t i) -> std::string {
            if (exemplars[i].trace_id == 0) return "";
            return " # {trace_id=\"" + std::to_string(exemplars[i].trace_id) + "\"} " +
                   fmt(exemplars[i].value);
          };
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += counts[i];
            out << fam->name << "_bucket"
                << render_labels_plus(child->labels, "le", fmt(h.bounds()[i])) << ' '
                << cumulative << exemplar_suffix(i) << '\n';
          }
          cumulative += counts.back();
          out << fam->name << "_bucket" << render_labels_plus(child->labels, "le", "+Inf")
              << ' ' << cumulative << exemplar_suffix(h.bounds().size()) << '\n';
          out << fam->name << "_sum" << child->label_text << ' ' << fmt(h.sum()) << '\n';
          out << fam->name << "_count" << child->label_text << ' ' << cumulative << '\n';
          break;
        }
      }
    }
  }
  return out.str();
}

std::string MetricRegistry::statusz_text() const {
  run_collect_hooks();
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream out;
  out << "== metrics snapshot ==\n";
  for (const auto& fam : families_) {
    for (const auto& child : fam->children) {
      out << fam->name << child->label_text << ": ";
      switch (fam->kind) {
        case Kind::kCounter:
          out << child->counter->value();
          break;
        case Kind::kGauge:
          out << fmt(child->gauge->value());
          break;
        case Kind::kHistogram: {
          const FixedHistogram& h = *child->histogram;
          out << "count=" << h.count() << " mean=" << fmt(h.mean())
              << " p50=" << fmt(h.quantile(0.50)) << " p90=" << fmt(h.quantile(0.90))
              << " p99=" << fmt(h.quantile(0.99));
          // Highest bucket holding an exemplar ≈ the worst retained
          // sample — the trace id to feed to frame_forensics.
          const auto exemplars = h.exemplars();
          for (std::size_t i = exemplars.size(); i-- > 0;) {
            if (exemplars[i].trace_id == 0) continue;
            out << " exemplar=trace_id:" << exemplars[i].trace_id << '@'
                << fmt(exemplars[i].value) << "ms";
            break;
          }
          break;
        }
      }
      out << '\n';
    }
  }
  return out.str();
}

void MetricRegistry::reset_values() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& fam : families_) {
    for (auto& child : fam->children) {
      if (child->counter) child->counter->reset();
      if (child->gauge) child->gauge->reset();
      if (child->histogram) child->histogram->reset();
    }
  }
}

}  // namespace mar::telemetry
