#include "telemetry/histogram.h"

#include <algorithm>
#include <cmath>

namespace mar::telemetry {

double Histogram::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  if (lo == hi) return samples_[lo];
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace mar::telemetry
