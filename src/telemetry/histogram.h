// Sample-retaining histogram with exact percentile queries.
//
// Experiments produce at most a few hundred thousand samples per metric,
// so retaining them and sorting on demand is simpler and exact.
#pragma once

#include <cstddef>
#include <vector>

#include "telemetry/stats.h"

namespace mar::telemetry {

class Histogram {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
    acc_.add(x);
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const { return acc_.mean(); }
  [[nodiscard]] double stddev() const { return acc_.stddev(); }
  [[nodiscard]] double min() const { return acc_.min(); }
  [[nodiscard]] double max() const { return acc_.max(); }

  // Exact percentile (nearest-rank with linear interpolation); p in
  // [0,100]. Empty histograms return a defined 0.0 (as do median(),
  // mean(), min(), max()) rather than indexing an empty vector.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

  // Fold another histogram's samples into this one: one bulk append and
  // a single deferred re-sort on the next percentile query, not a
  // per-sample add() loop.
  void merge(const Histogram& other) {
    if (other.samples_.empty()) return;
    if (this == &other) {
      // Self-merge doubles the samples; copy first so insert() doesn't
      // read source iterators its own reallocation invalidated.
      const std::vector<double> copy = samples_;
      samples_.insert(samples_.end(), copy.begin(), copy.end());
      sorted_ = false;
      acc_.merge(acc_);
      return;
    }
    samples_.reserve(samples_.size() + other.samples_.size());
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sorted_ = false;
    acc_.merge(other.acc_);
  }

  void reset() {
    samples_.clear();
    acc_.reset();
    sorted_ = false;
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  Accumulator acc_;
};

}  // namespace mar::telemetry
