// Sample-retaining histogram with exact percentile queries.
//
// Experiments produce at most a few hundred thousand samples per metric,
// so retaining them and sorting on demand is simpler and exact.
#pragma once

#include <cstddef>
#include <vector>

#include "telemetry/stats.h"

namespace mar::telemetry {

class Histogram {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
    acc_.add(x);
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const { return acc_.mean(); }
  [[nodiscard]] double stddev() const { return acc_.stddev(); }
  [[nodiscard]] double min() const { return acc_.min(); }
  [[nodiscard]] double max() const { return acc_.max(); }

  // Exact percentile (nearest-rank with linear interpolation); p in [0,100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

  // Fold another histogram's samples into this one.
  void merge(const Histogram& other) {
    for (double s : other.samples_) add(s);
  }

  void reset() {
    samples_.clear();
    acc_.reset();
    sorted_ = false;
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  Accumulator acc_;
};

}  // namespace mar::telemetry
