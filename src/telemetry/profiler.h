// Continuous profiling plane: a signal-driven sampling CPU profiler and
// a frame-path allocation profiler, both built to coexist with the hot
// pipeline the rest of src/telemetry measures.
//
// CPU sampling: start(hz) arms one POSIX per-thread CPU-time timer
// (timer_create + SIGEV_THREAD_ID) per live thread at `hz`; each SIGPROF
// delivery runs an async-signal-safe handler that snapshots the
// interrupted thread's stage-annotation stack (see ProfScope) plus a
// frame-pointer walk of its call stack into a lock-free MPSC ring. A
// collector thread drains the ring every few tens of milliseconds and
// folds samples into weighted stacks; symbolization (dladdr + demangle)
// happens there, never in the handler. stop() disarms, quiesces
// in-flight handlers, and returns the aggregated ProfileReport.
//
// Allocation attribution: the frame/pyramid/descriptor choke points in
// src/vision and src/dsp call profile_alloc()/profile_alloc_as(), which
// attribute bytes + call counts to the innermost active ProfScope stage
// (or an explicit stage name), sharded per pool lane exactly like
// MetricRegistry counters. alloc_report() merges the shards.
//
// Cost contract (same discipline as metrics_enabled()): with profiling
// disabled, ProfScope and profile_alloc() are ONE relaxed atomic load.
// The async-signal-safe subset used by the handler is documented in
// ARCHITECTURE.md §10.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace mar::telemetry {

namespace profiler_internal {

// Process-wide switch for the cheap attribution paths (stage scopes and
// allocation counting). Flipped by Profiler::set_attribution() and by
// Profiler::start(); never flipped back by stop() so a profile can be
// re-armed without losing alloc accounting.
extern std::atomic<bool> g_prof_enabled;

inline constexpr int kMaxStageDepth = 8;   // nested ProfScope frames kept
inline constexpr int kMaxStackPcs = 24;    // frame-pointer walk depth

// Per-thread annotation state read by the SIGPROF handler. `depth` is
// the push/pop cursor (may exceed kMaxStageDepth; extra levels are
// counted but unnamed); names are interned string literals, written
// before the depth store with a signal fence so the handler — which
// interrupts this same thread — always sees a consistent prefix.
struct ThreadProf {
  const char* stages[kMaxStageDepth];
  std::atomic<int> depth{0};
  // Thread stack bounds for the handler's frame-pointer walk, resolved
  // once per thread on first ProfScope entry (pthread_getattr_np is not
  // async-signal-safe, so it cannot run in the handler). Threads that
  // never enter a ProfScope get leaf-PC-only samples.
  void* stack_lo = nullptr;
  void* stack_hi = nullptr;
  std::atomic<bool> bounds_ready{false};
};

extern thread_local ThreadProf t_prof;

void scope_enter_slow(const char* stage);
void scope_leave_slow();
void record_alloc_slow(const char* stage, std::size_t bytes);

}  // namespace profiler_internal

// One relaxed load; mirrors metrics_enabled().
[[nodiscard]] inline bool profiling_enabled() {
  return profiler_internal::g_prof_enabled.load(std::memory_order_relaxed);
}

// RAII stage annotation. `stage` MUST be a string literal (or otherwise
// immortal): the signal handler and the alloc table store the pointer,
// not a copy. Scopes nest; samples attribute to the full stage stack,
// allocations to the innermost frame.
class ProfScope {
 public:
  explicit ProfScope(const char* stage) {
    if (!profiling_enabled()) return;
    profiler_internal::scope_enter_slow(stage);
    armed_ = true;
  }
  ~ProfScope() {
    if (armed_) profiler_internal::scope_leave_slow();
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  bool armed_ = false;
};

// Attribute `bytes` to the calling thread's innermost ProfScope stage
// ("(unattributed)" when no scope is active). Called from the Image
// constructor and friends — one relaxed load when profiling is off.
inline void profile_alloc(std::size_t bytes) {
  if (!profiling_enabled()) return;
  profiler_internal::record_alloc_slow(nullptr, bytes);
}

// Attribute `bytes` to an explicit stage name (string literal), for
// choke points that are not lexically inside their stage's ProfScope
// (e.g. descriptor vectors grown by a callee shared across stages).
inline void profile_alloc_as(const char* stage, std::size_t bytes) {
  if (!profiling_enabled()) return;
  profiler_internal::record_alloc_slow(stage, bytes);
}

// Aggregated CPU profile. `folded` holds collapsed stacks — frames
// root-first, joined by ';', the leaf being the symbolized interrupted
// PC — with sample counts, sorted heaviest first.
struct ProfileReport {
  int hz = 0;
  double duration_s = 0.0;
  std::uint64_t samples = 0;     // collected into the aggregation
  std::uint64_t dropped = 0;     // lost to a full ring
  std::uint64_t attributed = 0;  // samples carrying >= 1 stage frame
  int threads_profiled = 0;      // per-thread timers armed at start()

  std::vector<std::pair<std::string, std::uint64_t>> folded;

  // Fraction of samples that resolved to at least one named stage frame
  // (the bench/profile_attribution gate input).
  [[nodiscard]] double attributed_fraction() const {
    return samples ? static_cast<double>(attributed) / static_cast<double>(samples) : 0.0;
  }
  // Samples whose stack contains `stage` as a frame.
  [[nodiscard]] std::uint64_t stage_samples(const std::string& stage) const;

  // Collapsed-stack text ("a;b;leaf 42\n" per line) — the flamegraph.pl
  // / speedscope-import interchange format.
  [[nodiscard]] std::string folded_text() const;
  // speedscope "sampled" profile JSON (https://www.speedscope.app).
  [[nodiscard]] std::string speedscope_json(const std::string& name) const;
};

// Allocation attribution snapshot, merged across lanes and stages.
struct AllocReport {
  struct Stage {
    std::string stage;
    std::uint64_t bytes = 0;
    std::uint64_t calls = 0;
    // Per-pool-lane byte split (lane & 7, like internal::lane_shard()).
    std::array<std::uint64_t, 8> lane_bytes{};
  };
  std::vector<Stage> stages;  // sorted by bytes, heaviest first

  [[nodiscard]] std::uint64_t total_bytes() const;
  [[nodiscard]] const Stage* find(const std::string& name) const;
  // "stage bytes" folded lines (heap flamegraph interchange).
  [[nodiscard]] std::string folded_text() const;
};

// The process-wide sampling profiler. start()/stop() are serialized
// internally; one capture at a time.
class Profiler {
 public:
  static Profiler& instance();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Arm per-thread CPU-time timers at `hz` (clamped to [1, 1000]) for
  // every thread in /proc/self/task and start the collector. Also
  // enables attribution. Fails if already running.
  Status start(int hz = 99);

  // Disarm, quiesce in-flight handlers, drain the ring, and return the
  // final aggregation. No-op (empty report) if not running.
  ProfileReport stop();

  [[nodiscard]] bool running() const;

  // Aggregation so far (while running) or the last completed report.
  [[nodiscard]] ProfileReport snapshot() const;

  // Enable/disable stage scopes + allocation counting without CPU
  // sampling (quickstart --profile uses this; start() implies it).
  void set_attribution(bool on);
  [[nodiscard]] bool attribution_enabled() const { return profiling_enabled(); }

  // Allocation attribution snapshot / reset (reset also clears the
  // per-stage registry counters' published baseline).
  [[nodiscard]] AllocReport alloc_report() const;
  void reset_alloc();

  // Register the mar_profile_* collect hook with MetricRegistry::
  // instance() (idempotent): samples/dropped/attributed counters, a
  // sampling-rate gauge, and per-stage alloc bytes/calls counters are
  // synced before every scrape.
  void publish_to_registry();

 private:
  Profiler() = default;
};

}  // namespace mar::telemetry
