// Process-wide live metric registry: counters, gauges, and fixed-bucket
// histograms with lock-free update paths, label support, and Prometheus
// exposition rendering.
//
// The registry is the always-on complement of the Tracer: where the
// tracer records individual spans for post-mortem analysis, the
// registry keeps cheap aggregates a scraper (the embedded net::HttpServer
// at /metrics) can read at any moment during a live run.
//
// Update-path contract (mirrors trace.cc): when metrics are disabled the
// cost of inc()/set()/observe() is a single relaxed atomic load; when
// enabled, counters and histograms shard their cells per thread-pool
// lane (parallel_lane(), like the tracer's lane tagging) so concurrent
// updates from pool workers do not bounce one cache line. Reads sum the
// shards; totals are exact because every write is a relaxed fetch_add.
//
// Metric creation (counter()/gauge()/histogram()) takes a mutex and may
// allocate — do it once at startup or on a cold path and cache the
// returned reference, which stays valid for the registry's lifetime.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"

namespace mar::telemetry {

namespace internal {
extern std::atomic<bool> g_metrics_enabled;

// Cache-line-padded shard so lanes update disjoint lines.
struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> v{0};
};

inline constexpr std::size_t kMetricShards = 8;  // power of two

[[nodiscard]] inline std::size_t lane_shard() {
  return static_cast<std::size_t>(parallel_lane()) & (kMetricShards - 1);
}

// Atomic double stored as bits; add() is a CAS loop.
class AtomicDouble {
 public:
  void store(double v) { bits_.store(to_bits(v), std::memory_order_relaxed); }
  void add(double d) {
    std::uint64_t old = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(old, to_bits(to_double(old) + d),
                                        std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double load() const { return to_double(bits_.load(std::memory_order_relaxed)); }

 private:
  static std::uint64_t to_bits(double v) {
    std::uint64_t b;
    static_assert(sizeof(b) == sizeof(v));
    __builtin_memcpy(&b, &v, sizeof(b));
    return b;
  }
  static double to_double(std::uint64_t b) {
    double v;
    __builtin_memcpy(&v, &b, sizeof(v));
    return v;
  }
  std::atomic<std::uint64_t> bits_{0};
};
}  // namespace internal

// Global switch shared by every metric: one relaxed load per update
// when off. Flipped by MetricRegistry::set_enabled().
[[nodiscard]] inline bool metrics_enabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}

// One label set of a metric family, e.g. {{"stage","sift"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotone event count, sharded per pool lane.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (!metrics_enabled()) return;
    shards_[internal::lane_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  friend class MetricRegistry;
  void reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }
  std::array<internal::CounterShard, internal::kMetricShards> shards_;
};

// Last-write-wins sampled value (RSS bytes, CPU %, queue depth).
class Gauge {
 public:
  void set(double v) {
    if (!metrics_enabled()) return;
    value_.store(v);
  }
  void add(double d) {
    if (!metrics_enabled()) return;
    value_.add(d);
  }
  [[nodiscard]] double value() const { return value_.load(); }

 private:
  friend class MetricRegistry;
  void reset() { value_.store(0.0); }
  internal::AtomicDouble value_;
};

// Fixed-bucket histogram: cumulative-bucket Prometheus semantics, bucket
// cells and the sum/count sharded per pool lane like Counter.
class FixedHistogram {
 public:
  // `bounds` are ascending inclusive upper bounds; the +Inf bucket is
  // implicit. Defaults cover sub-ms kernels to multi-second stalls.
  static const std::vector<double>& default_latency_ms_bounds();

  // The last exemplar observed into a bucket: a trace_id that landed
  // there plus the (float-precision) observed value, rendered as an
  // OpenMetrics `# {trace_id="..."} value` suffix on the bucket line.
  // trace_id 0 means the bucket has no exemplar.
  struct Exemplar {
    std::uint32_t trace_id = 0;
    double value = 0.0;
  };

  void observe(double v) { observe(v, 0); }
  // Exemplar-carrying observation: `trace_id` ties this sample to a
  // retained trace (see telemetry::FlightRecorder). Pass 0 when the
  // frame was not retained — the sample still counts, without an
  // exemplar. A single relaxed store (value+id packed into one word)
  // keeps the pair coherent without locking.
  void observe(double v, std::uint32_t trace_id) {
    if (!metrics_enabled()) return;
    const std::size_t b = bucket_of(v);
    Shard& s = shards_[internal::lane_shard()];
    s.buckets[b].fetch_add(1, std::memory_order_relaxed);
    s.sum.add(v);
    if (trace_id != 0) {
      exemplars_[b].store(pack_exemplar(trace_id, v), std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const {
    const std::uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
  }
  // Per-bucket (non-cumulative) counts, one extra entry for +Inf.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  // Per-bucket exemplars, one entry per bucket (+Inf last); entries
  // with trace_id 0 carry no exemplar.
  [[nodiscard]] std::vector<Exemplar> exemplars() const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  // Quantile estimate (q in [0,1]) by linear interpolation inside the
  // bucket that crosses rank q; exact enough for /statusz p50/p99.
  [[nodiscard]] double quantile(double q) const;

 private:
  friend class MetricRegistry;
  explicit FixedHistogram(std::vector<double> bounds);
  void reset();
  [[nodiscard]] std::size_t bucket_of(double v) const;

  // value (float bits) in the high word, trace_id in the low word, so
  // one relaxed store publishes a coherent pair.
  static std::uint64_t pack_exemplar(std::uint32_t trace_id, double v) {
    const float f = static_cast<float>(v);
    std::uint32_t bits;
    __builtin_memcpy(&bits, &f, sizeof(bits));
    return (static_cast<std::uint64_t>(bits) << 32) | trace_id;
  }

  struct Shard {
    std::vector<std::atomic<std::uint64_t>> buckets;  // bounds_.size() + 1
    internal::AtomicDouble sum;
  };
  std::vector<double> bounds_;
  std::array<Shard, internal::kMetricShards> shards_;
  std::vector<std::atomic<std::uint64_t>> exemplars_;  // bounds_.size() + 1
};

// The process-wide registry. Families are created on first use and live
// forever; children (one per label set) have stable addresses.
class MetricRegistry {
 public:
  static MetricRegistry& instance();

  // Enable/disable every metric's update path (process-wide).
  void set_enabled(bool on) {
    internal::g_metrics_enabled.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const { return metrics_enabled(); }

  // Get-or-create. `help` is taken from the first call for a family;
  // re-registering a family with a different metric type throws.
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help, const Labels& labels = {});
  FixedHistogram& histogram(const std::string& name, const std::string& help,
                            std::vector<double> bounds, const Labels& labels = {});

  // Register a pre-scrape sync hook: every prometheus_text()/
  // statusz_text() call runs all hooks BEFORE taking the family lock,
  // so hooks may freely create/update metrics (the profiler publishes
  // its mar_profile_* series this way). Hooks live forever.
  void add_collect_hook(std::function<void()> hook);

  // Prometheus plaintext exposition (text/plain; version=0.0.4),
  // families in registration order, children in creation order.
  [[nodiscard]] std::string prometheus_text() const;
  // Human-readable snapshot for /statusz: counters, gauges, and
  // histogram count/mean/p50/p99 tables.
  [[nodiscard]] std::string statusz_text() const;

  // Zero every metric's cells (families and children survive). Tests.
  void reset_values();

 private:
  MetricRegistry() = default;

  enum class Kind { kCounter, kGauge, kHistogram };
  struct Child {
    Labels labels;
    std::string label_text;  // rendered {k="v",...} or ""
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<FixedHistogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    std::vector<std::unique_ptr<Child>> children;
  };

  Family& family_of(const std::string& name, const std::string& help, Kind kind);
  Child& child_of(Family& fam, const Labels& labels);
  void run_collect_hooks() const;

  mutable std::mutex mu_;  // guards families_ layout, not metric cells
  std::vector<std::unique_ptr<Family>> families_;

  mutable std::mutex hooks_mu_;  // guards the hook list, never held while running one
  std::vector<std::function<void()>> collect_hooks_;
};

}  // namespace mar::telemetry
