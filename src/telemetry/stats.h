// Streaming statistics accumulators.
#pragma once

#include <cmath>
#include <cstdint>

namespace mar::telemetry {

// Welford's online mean/variance.
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

  // Fold another accumulator in (Chan et al. pairwise combination) —
  // O(1) instead of replaying the other side's samples.
  void merge(const Accumulator& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    mean_ += delta * nb / (na + nb);
    n_ += other.n_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  void reset() { *this = Accumulator{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Ratio counter (e.g. frame success rate, queue drop ratio).
class RatioCounter {
 public:
  void hit() { ++hits_; ++total_; }
  void miss() { ++total_; }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double ratio() const {
    return total_ ? static_cast<double>(hits_) / static_cast<double>(total_) : 0.0;
  }

  void reset() { *this = RatioCounter{}; }

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace mar::telemetry
