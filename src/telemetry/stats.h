// Streaming statistics accumulators.
#pragma once

#include <cmath>
#include <cstdint>

namespace mar::telemetry {

// Welford's online mean/variance.
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

  void reset() { *this = Accumulator{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Ratio counter (e.g. frame success rate, queue drop ratio).
class RatioCounter {
 public:
  void hit() { ++hits_; ++total_; }
  void miss() { ++total_; }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double ratio() const {
    return total_ ? static_cast<double>(hits_) / static_cast<double>(total_) : 0.0;
  }

  void reset() { *this = RatioCounter{}; }

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace mar::telemetry
