#include "telemetry/profiler.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include <cxxabi.h>
#include <dirent.h>
#include <dlfcn.h>
#include <pthread.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#include "common/parallel.h"
#include "telemetry/registry.h"

// Some libcs spell the SIGEV_THREAD_ID tid field differently; glibc
// hides it inside _sigev_un unless this macro is provided.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace mar::telemetry {
namespace profiler_internal {

std::atomic<bool> g_prof_enabled{false};
thread_local ThreadProf t_prof;

namespace {

// ---------------------------------------------------------------------
// Sample ring: MPSC, written by SIGPROF handlers, drained by the
// collector thread. Slots are claimed with a head fetch_add plus a
// per-slot state CAS; a full ring drops the sample (counted). The slot
// array is allocated on first start() and intentionally never freed so
// a straggling signal can never touch freed memory.
// ---------------------------------------------------------------------

constexpr std::uint32_t kSlotFree = 0;
constexpr std::uint32_t kSlotWriting = 1;
constexpr std::uint32_t kSlotFull = 2;

struct RawSample {
  std::atomic<std::uint32_t> state{kSlotFree};
  std::uint32_t tid = 0;
  std::uint16_t n_pcs = 0;
  std::uint16_t n_stages = 0;
  void* pcs[kMaxStackPcs];
  const char* stages[kMaxStageDepth];
};

constexpr std::size_t kRingSlots = 1u << 13;  // 8192 ≈ 80 s of 99 Hz

RawSample* g_slots = nullptr;  // leaked by design (signal safety)
std::atomic<std::uint64_t> g_head{0};
std::atomic<std::uint64_t> g_dropped{0};

// Handler gate + in-flight count. The handler increments g_in_handler
// FIRST (before reading anything shared), so start()/stop() can quiesce
// by waiting for it to reach zero after flipping g_sampling.
std::atomic<bool> g_sampling{false};
std::atomic<int> g_in_handler{0};

void sigprof_handler(int /*signo*/, siginfo_t* /*info*/, void* ucontext) {
  // Async-signal-safe subset only: atomics, signal fences, syscall(2),
  // and reads of memory proven mapped. No malloc, no locks, no stdio.
  g_in_handler.fetch_add(1, std::memory_order_acq_rel);
  if (g_sampling.load(std::memory_order_acquire)) {
    const int saved_errno = errno;
    const std::uint64_t seq = g_head.fetch_add(1, std::memory_order_relaxed);
    RawSample& slot = g_slots[seq & (kRingSlots - 1)];
    std::uint32_t expect = kSlotFree;
    if (!slot.state.compare_exchange_strong(expect, kSlotWriting, std::memory_order_acquire,
                                            std::memory_order_relaxed)) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
    } else {
      slot.tid = static_cast<std::uint32_t>(::syscall(SYS_gettid));

      // Stage annotation snapshot: same-thread, so depth/names are a
      // consistent prefix (names are stored before the depth bump,
      // fenced in scope_enter_slow()).
      const ThreadProf& tp = t_prof;
      int depth = tp.depth.load(std::memory_order_relaxed);
      std::atomic_signal_fence(std::memory_order_acquire);
      if (depth < 0) depth = 0;
      if (depth > kMaxStageDepth) depth = kMaxStageDepth;
      for (int i = 0; i < depth; ++i) slot.stages[i] = tp.stages[i];
      slot.n_stages = static_cast<std::uint16_t>(depth);

      // PC capture: interrupted pc always; then a frame-pointer walk,
      // but only when this thread's stack bounds are known — every
      // dereference is then inside [sp, stack_hi), which is mapped.
      std::uint16_t n = 0;
#if defined(__x86_64__)
      const auto* uc = static_cast<const ucontext_t*>(ucontext);
      auto* pc = reinterpret_cast<void*>(uc->uc_mcontext.gregs[REG_RIP]);
      auto* fp = reinterpret_cast<char*>(uc->uc_mcontext.gregs[REG_RBP]);
      auto* sp = reinterpret_cast<char*>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
      const auto* uc = static_cast<const ucontext_t*>(ucontext);
      auto* pc = reinterpret_cast<void*>(uc->uc_mcontext.pc);
      auto* fp = reinterpret_cast<char*>(uc->uc_mcontext.regs[29]);
      auto* sp = reinterpret_cast<char*>(uc->uc_mcontext.sp);
#else
      void* pc = nullptr;
      char* fp = nullptr;
      char* sp = nullptr;
      (void)ucontext;
#endif
      if (pc != nullptr) slot.pcs[n++] = pc;
      if (tp.bounds_ready.load(std::memory_order_acquire)) {
        auto* hi = static_cast<char*>(tp.stack_hi);
        char* lo = sp != nullptr ? sp : static_cast<char*>(tp.stack_lo);
        while (n < kMaxStackPcs && fp != nullptr) {
          // Two-pointer frame record: [fp] = caller fp, [fp+8] = return
          // address. Validate alignment and range before every read.
          if (reinterpret_cast<std::uintptr_t>(fp) % sizeof(void*) != 0) break;
          if (fp < lo || fp + 2 * sizeof(void*) > hi) break;
          void* const* frame = reinterpret_cast<void* const*>(fp);
          void* ret = frame[1];
          auto* next = static_cast<char*>(frame[0]);
          if (ret == nullptr) break;
          slot.pcs[n++] = ret;
          if (next <= fp) break;  // must walk strictly toward the root
          fp = next;
        }
      }
      slot.n_pcs = n;
      slot.state.store(kSlotFull, std::memory_order_release);
    }
    errno = saved_errno;
  }
  g_in_handler.fetch_sub(1, std::memory_order_release);
}

// ---------------------------------------------------------------------
// Allocation attribution: a small lock-free open-addressed table keyed
// by interned stage pointer, with per-lane sharded byte/call cells
// (same lane_shard() discipline as MetricRegistry counters). Stages are
// string literals, so the table never grows past a few dozen entries.
// ---------------------------------------------------------------------

constexpr std::size_t kAllocCells = 64;  // power of two
const char* const kUnattributed = "(unattributed)";

struct AllocCell {
  std::atomic<const char*> stage{nullptr};
  std::atomic<std::uint64_t> bytes[internal::kMetricShards];
  std::atomic<std::uint64_t> calls[internal::kMetricShards];
};

AllocCell g_alloc_cells[kAllocCells];
std::atomic<std::uint64_t> g_alloc_dropped{0};  // table-full overflow

AllocCell* alloc_cell_for(const char* stage) {
  auto h = reinterpret_cast<std::uintptr_t>(stage);
  std::size_t idx = (h >> 4) * 0x9E3779B9u & (kAllocCells - 1);
  for (std::size_t probe = 0; probe < kAllocCells; ++probe) {
    AllocCell& cell = g_alloc_cells[(idx + probe) & (kAllocCells - 1)];
    const char* cur = cell.stage.load(std::memory_order_acquire);
    if (cur == stage) return &cell;
    if (cur == nullptr) {
      const char* expect = nullptr;
      if (cell.stage.compare_exchange_strong(expect, stage, std::memory_order_acq_rel)) {
        return &cell;
      }
      if (expect == stage) return &cell;  // lost the race to ourselves
    }
  }
  return nullptr;  // table full — drop, counted
}

// Resolve this thread's stack bounds once, from normal (non-signal)
// context. Works for the main thread too: glibc's pthread_getattr_np
// reports the grow-on-demand main stack's full extent, and addresses
// in [sp, hi) are always mapped for both thread kinds.
void ensure_stack_bounds(ThreadProf& tp) {
  if (tp.bounds_ready.load(std::memory_order_relaxed)) return;
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* lo = nullptr;
    std::size_t size = 0;
    if (pthread_attr_getstack(&attr, &lo, &size) == 0 && lo != nullptr && size > 0) {
      tp.stack_lo = lo;
      tp.stack_hi = static_cast<char*>(lo) + size;
      tp.bounds_ready.store(true, std::memory_order_release);
    }
    pthread_attr_destroy(&attr);
  }
}

}  // namespace

void scope_enter_slow(const char* stage) {
  ThreadProf& tp = t_prof;
  ensure_stack_bounds(tp);
  const int d = tp.depth.load(std::memory_order_relaxed);
  if (d >= 0 && d < kMaxStageDepth) tp.stages[d] = stage;
  // Name visible before the depth bump, from this thread's own signal
  // handler's point of view.
  std::atomic_signal_fence(std::memory_order_release);
  tp.depth.store(d + 1, std::memory_order_relaxed);
}

void scope_leave_slow() {
  ThreadProf& tp = t_prof;
  const int d = tp.depth.load(std::memory_order_relaxed);
  if (d > 0) tp.depth.store(d - 1, std::memory_order_relaxed);
}

void record_alloc_slow(const char* stage, std::size_t bytes) {
  if (stage == nullptr) {
    const ThreadProf& tp = t_prof;
    const int d = tp.depth.load(std::memory_order_relaxed);
    stage = (d > 0 && d <= kMaxStageDepth) ? tp.stages[d - 1]
            : d > kMaxStageDepth           ? tp.stages[kMaxStageDepth - 1]
                                           : kUnattributed;
  }
  AllocCell* cell = alloc_cell_for(stage);
  if (cell == nullptr) {
    g_alloc_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::size_t shard = internal::lane_shard();
  cell->bytes[shard].fetch_add(bytes, std::memory_order_relaxed);
  cell->calls[shard].fetch_add(1, std::memory_order_relaxed);
}

}  // namespace profiler_internal

namespace {

using namespace profiler_internal;  // NOLINT(google-build-using-namespace)

// Linux per-thread CPU clock id, as glibc's MAKE_THREAD_CPUCLOCK
// encodes it: CPUCLOCK_SCHED (2) | CPUCLOCK_PERTHREAD_MASK (4) in the
// low bits, ~tid above. Lets us arm a CPU-time timer for a sibling
// thread found via /proc/self/task without holding its pthread_t.
clockid_t thread_cpu_clockid(pid_t tid) {
  return static_cast<clockid_t>((~static_cast<unsigned int>(tid)) << 3 | 6u);
}

std::vector<pid_t> list_task_tids() {
  std::vector<pid_t> tids;
  DIR* dir = ::opendir("/proc/self/task");
  if (dir == nullptr) {
    tids.push_back(static_cast<pid_t>(::syscall(SYS_gettid)));
    return tids;
  }
  while (dirent* ent = ::readdir(dir)) {
    if (ent->d_name[0] == '.') continue;
    tids.push_back(static_cast<pid_t>(std::strtol(ent->d_name, nullptr, 10)));
  }
  ::closedir(dir);
  return tids;
}

// Wait for in-flight SIGPROF handlers to retire (bounded; a handler is
// a few hundred instructions, so this never spins long).
void quiesce_handlers() {
  for (int spin = 0; spin < 20000; ++spin) {
    if (g_in_handler.load(std::memory_order_acquire) == 0) return;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

std::string demangled(const char* name) {
  int status = 0;
  char* out = abi::__cxa_demangle(name, nullptr, nullptr, &status);
  if (status != 0 || out == nullptr) {
    std::free(out);
    return name;
  }
  std::string s(out);
  std::free(out);
  // Trim template/arg spam so folded frames stay one readable token.
  const std::size_t paren = s.find('(');
  if (paren != std::string::npos) s.resize(paren);
  return s;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

// The folded-stack aggregation the collector builds incrementally.
struct Aggregation {
  std::unordered_map<std::string, std::uint64_t> folded;
  std::uint64_t samples = 0;
  std::uint64_t attributed = 0;
};

class ProfilerImpl {
 public:
  static ProfilerImpl& get() {
    static ProfilerImpl* impl = new ProfilerImpl();  // immortal, like the ring
    return *impl;
  }

  Status start(int hz) {
    std::lock_guard<std::mutex> lk(mu_);
    if (running_) return Status(StatusCode::kInternal, "profiler already running");
    hz_ = std::clamp(hz, 1, 1000);

    if (g_slots == nullptr) g_slots = new RawSample[kRingSlots];
    if (!install_handler()) {
      return Status(StatusCode::kInternal, "sigaction(SIGPROF) failed");
    }

    // Previous-epoch stragglers must retire before the ring resets.
    quiesce_handlers();
    for (std::size_t i = 0; i < kRingSlots; ++i) {
      g_slots[i].state.store(kSlotFree, std::memory_order_relaxed);
    }
    g_head.store(0, std::memory_order_relaxed);
    g_dropped.store(0, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> alk(agg_mu_);
      agg_ = Aggregation{};
    }

    g_prof_enabled.store(true, std::memory_order_relaxed);
    g_sampling.store(true, std::memory_order_release);

    // One CPU-time timer per live thread. Threads spawned later are not
    // covered until the next start() (documented limitation).
    timers_.clear();
    const long ns = 1000000000L / hz_;
    const itimerspec spec{{0, ns}, {0, ns}};
    for (pid_t tid : list_task_tids()) {
      sigevent sev{};
      sev.sigev_notify = SIGEV_THREAD_ID;
      sev.sigev_signo = SIGPROF;
      sev.sigev_notify_thread_id = tid;
      timer_t t{};
      if (::timer_create(thread_cpu_clockid(tid), &sev, &t) != 0) continue;
      if (::timer_settime(t, 0, &spec, nullptr) != 0) {
        ::timer_delete(t);
        continue;
      }
      timers_.push_back(t);
    }
    if (timers_.empty()) {
      g_sampling.store(false, std::memory_order_release);
      return Status(StatusCode::kUnavailable, "no per-thread cpu timers could be armed");
    }

    threads_profiled_ = static_cast<int>(timers_.size());
    start_time_ = std::chrono::steady_clock::now();
    collector_stop_ = false;
    collector_ = std::thread([this] { collector_loop(); });
    running_ = true;
    return Status::ok();
  }

  ProfileReport stop() {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_) return last_report_;
    g_sampling.store(false, std::memory_order_release);
    for (timer_t t : timers_) ::timer_delete(t);
    timers_.clear();
    quiesce_handlers();
    {
      std::lock_guard<std::mutex> clk(collector_mu_);
      collector_stop_ = true;
    }
    collector_cv_.notify_all();
    if (collector_.joinable()) collector_.join();  // final drain inside
    running_ = false;
    last_report_ = make_report();
    return last_report_;
  }

  [[nodiscard]] bool running() const {
    std::lock_guard<std::mutex> lk(mu_);
    return running_;
  }

  [[nodiscard]] ProfileReport snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_) return last_report_;
    return make_report();
  }

  void reset_alloc() {
    for (auto& cell : g_alloc_cells) {
      for (std::size_t s = 0; s < internal::kMetricShards; ++s) {
        cell.bytes[s].store(0, std::memory_order_relaxed);
        cell.calls[s].store(0, std::memory_order_relaxed);
      }
    }
    g_alloc_dropped.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(publish_mu_);
    published_.clear();
  }

  [[nodiscard]] AllocReport alloc_report() const {
    // Merge cells by stage *content* (two TUs may intern the same
    // literal at different addresses).
    std::map<std::string, AllocReport::Stage> merged;
    for (const auto& cell : g_alloc_cells) {
      const char* stage = cell.stage.load(std::memory_order_acquire);
      if (stage == nullptr) continue;
      AllocReport::Stage& st = merged[stage];
      st.stage = stage;
      for (std::size_t s = 0; s < internal::kMetricShards; ++s) {
        const std::uint64_t b = cell.bytes[s].load(std::memory_order_relaxed);
        st.bytes += b;
        st.lane_bytes[s] += b;
        st.calls += cell.calls[s].load(std::memory_order_relaxed);
      }
    }
    AllocReport report;
    for (auto& [_, st] : merged) {
      if (st.calls != 0) report.stages.push_back(std::move(st));
    }
    std::sort(report.stages.begin(), report.stages.end(),
              [](const auto& a, const auto& b) { return a.bytes > b.bytes; });
    return report;
  }

  // Collect hook body: sync mar_profile_* into the registry. Runs
  // before each scrape, outside the registry's family lock.
  void publish_metrics() {
    auto& reg = MetricRegistry::instance();
    std::lock_guard<std::mutex> lk(publish_mu_);
    ProfileReport rep;
    {
      std::lock_guard<std::mutex> mlk(mu_);
      rep = running_ ? make_report() : last_report_;
      reg.gauge("mar_profile_sampling_hz", "Active CPU-sampling rate (0 = not sampling)")
          .set(running_ ? hz_ : 0);
    }
    publish_counter(reg, "mar_profile_samples_total", "CPU samples collected", rep.samples);
    publish_counter(reg, "mar_profile_samples_dropped_total",
                    "CPU samples dropped (ring full)", rep.dropped);
    publish_counter(reg, "mar_profile_samples_attributed_total",
                    "CPU samples with >=1 named stage frame", rep.attributed);
    for (const auto& st : alloc_report().stages) {
      publish_counter(reg, "mar_profile_alloc_bytes_total",
                      "Frame-path bytes attributed per stage", st.bytes,
                      {{"stage", st.stage}});
      publish_counter(reg, "mar_profile_alloc_calls_total",
                      "Frame-path allocation calls per stage", st.calls,
                      {{"stage", st.stage}});
    }
  }

 private:
  ProfilerImpl() = default;

  static bool install_handler() {
    struct sigaction sa{};
    sa.sa_sigaction = &sigprof_handler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    return ::sigaction(SIGPROF, &sa, nullptr) == 0;
  }

  void collector_loop() {
    std::unique_lock<std::mutex> lk(collector_mu_);
    while (!collector_stop_) {
      collector_cv_.wait_for(lk, std::chrono::milliseconds(20));
      drain();
    }
    drain();  // final sweep after stop() disarmed the timers
  }

  // Move full ring slots into the folded aggregation; symbolize leaves
  // here, far from the signal handler.
  void drain() {
    std::lock_guard<std::mutex> alk(agg_mu_);
    for (std::size_t i = 0; i < kRingSlots; ++i) {
      RawSample& slot = g_slots[i];
      if (slot.state.load(std::memory_order_acquire) != kSlotFull) continue;
      fold(slot);
      slot.state.store(kSlotFree, std::memory_order_release);
    }
  }

  void fold(const RawSample& s) {
    std::string key;
    key.reserve(96);
    for (int i = 0; i < s.n_stages; ++i) {
      if (!key.empty()) key += ';';
      key += s.stages[i];
    }
    // Append the code frames root-first under the stage annotation;
    // pcs[] is leaf-first. Cap code frames to keep folded lines sane.
    constexpr int kMaxCodeFrames = 6;
    const int n_code = std::min<int>(s.n_pcs, kMaxCodeFrames);
    for (int i = n_code; i-- > 0;) {
      if (!key.empty()) key += ';';
      key += symbolize(s.pcs[i]);
    }
    if (key.empty()) key = "(unknown)";
    agg_.folded[key] += 1;
    agg_.samples += 1;
    if (s.n_stages > 0) agg_.attributed += 1;
  }

  std::string symbolize(void* pc) {
    auto it = symbols_.find(pc);
    if (it != symbols_.end()) return it->second;
    std::string name;
    Dl_info info{};
    if (::dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
      name = demangled(info.dli_sname);
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "0x%" PRIxPTR, reinterpret_cast<std::uintptr_t>(pc));
      name = buf;
    }
    symbols_.emplace(pc, name);
    return name;
  }

  [[nodiscard]] ProfileReport make_report() const {
    ProfileReport rep;
    rep.hz = hz_;
    rep.threads_profiled = threads_profiled_;
    rep.duration_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time_).count();
    rep.dropped = g_dropped.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> alk(agg_mu_);
    rep.samples = agg_.samples;
    rep.attributed = agg_.attributed;
    rep.folded.assign(agg_.folded.begin(), agg_.folded.end());
    std::sort(rep.folded.begin(), rep.folded.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    return rep;
  }

  void publish_counter(MetricRegistry& reg, const std::string& name, const std::string& help,
                       std::uint64_t total, const Labels& labels = {}) {
    // Counters are monotone; publish only the positive delta since the
    // last sync (publish_mu_ held by caller).
    std::string key = name;
    for (const auto& [k, v] : labels) key += "|" + k + "=" + v;
    std::uint64_t& last = published_[key];
    if (total > last) {
      reg.counter(name, help, labels).inc(total - last);
      last = total;
    }
  }

  mutable std::mutex mu_;  // start/stop/snapshot serialization
  bool running_ = false;
  int hz_ = 0;
  int threads_profiled_ = 0;
  std::chrono::steady_clock::time_point start_time_{};
  std::vector<timer_t> timers_;
  ProfileReport last_report_;

  std::thread collector_;
  std::mutex collector_mu_;
  std::condition_variable collector_cv_;
  bool collector_stop_ = false;

  mutable std::mutex agg_mu_;
  Aggregation agg_;
  std::unordered_map<void*, std::string> symbols_;

  std::mutex publish_mu_;
  std::unordered_map<std::string, std::uint64_t> published_;
};

}  // namespace

// --------------------------- reports ---------------------------------

std::uint64_t ProfileReport::stage_samples(const std::string& stage) const {
  std::uint64_t total = 0;
  for (const auto& [key, count] : folded) {
    std::size_t pos = 0;
    while (pos <= key.size()) {
      const std::size_t end = key.find(';', pos);
      const std::size_t stop = end == std::string::npos ? key.size() : end;
      if (key.compare(pos, stop - pos, stage) == 0) {
        total += count;
        break;
      }
      if (end == std::string::npos) break;
      pos = end + 1;
    }
  }
  return total;
}

std::string ProfileReport::folded_text() const {
  std::ostringstream out;
  for (const auto& [key, count] : folded) out << key << ' ' << count << '\n';
  return out.str();
}

std::string ProfileReport::speedscope_json(const std::string& name) const {
  // Frame table + per-stack index lists, weights = sample counts.
  std::vector<std::string> frames;
  std::unordered_map<std::string, std::size_t> frame_index;
  std::ostringstream samples_json;
  std::ostringstream weights_json;
  bool first = true;
  for (const auto& [key, count] : folded) {
    samples_json << (first ? "" : ",") << '[';
    bool inner_first = true;
    std::size_t pos = 0;
    while (pos <= key.size()) {
      const std::size_t end = key.find(';', pos);
      const std::size_t stop = end == std::string::npos ? key.size() : end;
      const std::string frame = key.substr(pos, stop - pos);
      auto [it, inserted] = frame_index.emplace(frame, frames.size());
      if (inserted) frames.push_back(frame);
      samples_json << (inner_first ? "" : ",") << it->second;
      inner_first = false;
      if (end == std::string::npos) break;
      pos = end + 1;
    }
    samples_json << ']';
    weights_json << (first ? "" : ",") << count;
    first = false;
  }

  std::ostringstream out;
  out << "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\","
      << "\"shared\":{\"frames\":[";
  for (std::size_t i = 0; i < frames.size(); ++i) {
    out << (i ? "," : "") << "{\"name\":\"" << json_escape(frames[i]) << "\"}";
  }
  out << "]},\"profiles\":[{\"type\":\"sampled\",\"name\":\"" << json_escape(name)
      << "\",\"unit\":\"none\",\"startValue\":0,\"endValue\":" << samples
      << ",\"samples\":[" << samples_json.str() << "],\"weights\":[" << weights_json.str()
      << "]}],\"name\":\"" << json_escape(name) << "\",\"activeProfileIndex\":0,"
      << "\"exporter\":\"mar-profiler\"}";
  return out.str();
}

std::uint64_t AllocReport::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& st : stages) total += st.bytes;
  return total;
}

const AllocReport::Stage* AllocReport::find(const std::string& name) const {
  for (const auto& st : stages) {
    if (st.stage == name) return &st;
  }
  return nullptr;
}

std::string AllocReport::folded_text() const {
  std::ostringstream out;
  for (const auto& st : stages) out << st.stage << ' ' << st.bytes << '\n';
  return out.str();
}

// --------------------------- Profiler --------------------------------

Profiler& Profiler::instance() {
  static Profiler p;
  return p;
}

Status Profiler::start(int hz) { return ProfilerImpl::get().start(hz); }

ProfileReport Profiler::stop() { return ProfilerImpl::get().stop(); }

bool Profiler::running() const { return ProfilerImpl::get().running(); }

ProfileReport Profiler::snapshot() const { return ProfilerImpl::get().snapshot(); }

void Profiler::set_attribution(bool on) {
  profiler_internal::g_prof_enabled.store(on, std::memory_order_relaxed);
}

AllocReport Profiler::alloc_report() const { return ProfilerImpl::get().alloc_report(); }

void Profiler::reset_alloc() { ProfilerImpl::get().reset_alloc(); }

void Profiler::publish_to_registry() {
  static std::once_flag once;
  std::call_once(once, [] {
    MetricRegistry::instance().add_collect_hook([] { ProfilerImpl::get().publish_metrics(); });
  });
}

}  // namespace mar::telemetry
