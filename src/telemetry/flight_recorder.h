// Per-frame flight recorder: the buffering half of tail-based trace
// retention.
//
// Head sampling (ClientConfig::trace_sample_every) decides *up front*
// which frames to trace, so the frames that blow the p99 budget or die
// inside a fault window are almost never the ones retained. The flight
// recorder inverts that: every in-flight frame's spans are captured in
// a small fixed-size buffer, and only *at frame completion* does the
// retention policy (expt::TailSampler) decide whether to promote the
// buffer into the Tracer's durable ring or recycle it.
//
// Mechanics:
//  * A fixed pool of direct-mapped buffer slots, indexed by
//    trace_id & (slots-1). Concurrent pool lanes recording different
//    frames therefore touch disjoint slots (and cache lines) — the
//    sharding falls out of the trace-id mapping. No allocation happens
//    after configure(); the hot path is one relaxed load when flight
//    recording is off, and an id check plus a count fetch_add when on.
//  * Drop/loss instants (drop_busy, drop_stale, drop_overflow,
//    drop_down, pkt_loss, pkt_taildrop, fetch_timeout) are terminal for
//    a frame — the client will never close it — so recording one
//    immediately flushes the buffer into the durable ring (reason
//    kDrop) and frees the slot. Later events of the same frame, if any,
//    fall through to the ring directly, keeping the timeline complete.
//  * A slot whose occupant never completed (e.g. a frame silently
//    swallowed by a dead endpoint) is evicted when a colliding trace_id
//    opens it; evictions are counted, not promoted.
//
// Every promotion appends a synthetic `retained` instant whose value is
// the RetainReason, so exporters and the forensics CLI can tell *why* a
// trace survived.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstddef>
#include <memory>

#include "common/time.h"
#include "common/types.h"
#include "telemetry/trace.h"

namespace mar::telemetry {

namespace internal {
extern std::atomic<bool> g_flight_enabled;
}  // namespace internal

// Process-wide gate, mirroring metrics_enabled(): one relaxed load per
// recorded event when flight recording is off.
[[nodiscard]] inline bool flight_recording_enabled() {
  return internal::g_flight_enabled.load(std::memory_order_relaxed);
}

// Why a flight-recorded frame was promoted into the durable ring.
enum class RetainReason : std::uint8_t {
  kNone = 0,
  kBaseline = 1,  // deterministic 1-in-N background sample
  kSlo = 2,       // closed during an SLO-window violation
  kFault = 3,     // closed inside an active injected-fault window
  kOutlier = 4,   // E2E latency at/above the rolling-p99 outlier bar
  kDrop = 5,      // terminal drop/loss instant flushed the buffer
};

[[nodiscard]] constexpr const char* to_string(RetainReason r) {
  switch (r) {
    case RetainReason::kNone: return "none";
    case RetainReason::kBaseline: return "baseline";
    case RetainReason::kSlo: return "slo_breach";
    case RetainReason::kFault: return "fault_window";
    case RetainReason::kOutlier: return "p99_outlier";
    case RetainReason::kDrop: return "drop";
  }
  return "?";
}

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultBuffers = 1024;  // power of two
  // Spans per frame: a 5-stage pipeline with queue/RPC/link/state-fetch
  // hops records ~25 events per frame; 64 leaves slack for retries.
  static constexpr std::size_t kEventsPerBuffer = 64;

  static FlightRecorder& instance();

  // Allocate `buffers` slots (rounded up to a power of two). Not
  // thread-safe against concurrent record() traffic — call it before
  // frames flow, like Tracer::reserve().
  void configure(std::size_t buffers);
  // Enables the gate; allocates kDefaultBuffers if configure() was
  // never called.
  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const { return flight_recording_enabled(); }
  // Free every slot and zero the stats (capacity kept). Same caveat.
  void reset();

  // Claim the slot for a frame entering flight. Evicts a stale
  // occupant (counted in stats().evicted).
  void open(std::uint32_t trace_id);
  [[nodiscard]] bool is_open(std::uint32_t trace_id) const;

  // Offer an event to the recorder. Returns true when consumed —
  // buffered in the frame's slot, or drop-flushed to the durable ring —
  // and false when no slot is open for the event's trace_id (the caller
  // records it durably as usual).
  bool try_record(const TraceEvent& e);

  // Completion-point verdicts. promote() copies the buffered events
  // plus a `retained` instant (at `ts`, on the client's track) into the
  // Tracer ring; both free the slot. Each returns false when the slot
  // no longer holds `trace_id` (already drop-flushed or evicted).
  bool promote(std::uint32_t trace_id, ClientId client, FrameId frame, SimTime ts,
               RetainReason reason);
  bool recycle(std::uint32_t trace_id);

  struct Stats {
    std::uint64_t opened = 0;
    std::uint64_t promoted = 0;      // promote() calls that found their slot
    std::uint64_t drop_flushed = 0;  // buffers flushed by a terminal drop instant
    std::uint64_t recycled = 0;
    std::uint64_t evicted = 0;    // stale occupants displaced by a colliding open()
    std::uint64_t truncated = 0;  // events past kEventsPerBuffer (consumed, lost)
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t buffer_count() const { return slot_count_; }

 private:
  struct Slot {
    std::atomic<std::uint32_t> id{0};  // 0 = free
    std::atomic<std::uint32_t> count{0};
    TraceEvent events[kEventsPerBuffer];
  };

  FlightRecorder() = default;
  [[nodiscard]] Slot* slot_of(std::uint32_t trace_id) const;
  // Append a slot's buffered events (+ optional extra event) and the
  // retained instant to the Tracer ring, then free the slot.
  void flush(Slot& slot, const TraceEvent* extra, ClientId client, FrameId frame,
             SimTime ts, std::uint32_t trace_id, RetainReason reason);

  std::unique_ptr<Slot[]> slots_;
  std::size_t slot_count_ = 0;  // power of two (0 until configured)

  std::atomic<std::uint64_t> opened_{0};
  std::atomic<std::uint64_t> promoted_{0};
  std::atomic<std::uint64_t> drop_flushed_{0};
  std::atomic<std::uint64_t> recycled_{0};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::uint64_t> truncated_{0};
};

}  // namespace mar::telemetry
