#include "telemetry/flight_recorder.h"

#include <algorithm>
#include <cstring>

namespace mar::telemetry {

namespace internal {
std::atomic<bool> g_flight_enabled{false};
}  // namespace internal

namespace {

// Terminal events: after one of these the client never closes the
// frame, so the retention verdict has to be taken on the spot.
bool is_terminal_drop(const TraceEvent& e) {
  if (e.phase != TracePhase::kInstant) return false;
  static constexpr const char* kDropNames[] = {
      spans::kDropBusy, spans::kDropStale, spans::kDropOverflow, spans::kDropDown,
      spans::kPacketLoss, spans::kTailDrop, spans::kFetchTimeout,
  };
  for (const char* name : kDropNames) {
    if (std::strcmp(e.name, name) == 0) return true;
  }
  return false;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::configure(std::size_t buffers) {
  slot_count_ = round_up_pow2(buffers == 0 ? kDefaultBuffers : buffers);
  slots_ = std::make_unique<Slot[]>(slot_count_);
  reset();
}

void FlightRecorder::set_enabled(bool on) {
  if (on && slot_count_ == 0) configure(kDefaultBuffers);
  internal::g_flight_enabled.store(on, std::memory_order_relaxed);
}

void FlightRecorder::reset() {
  for (std::size_t i = 0; i < slot_count_; ++i) {
    slots_[i].id.store(0, std::memory_order_relaxed);
    slots_[i].count.store(0, std::memory_order_relaxed);
  }
  opened_.store(0, std::memory_order_relaxed);
  promoted_.store(0, std::memory_order_relaxed);
  drop_flushed_.store(0, std::memory_order_relaxed);
  recycled_.store(0, std::memory_order_relaxed);
  evicted_.store(0, std::memory_order_relaxed);
  truncated_.store(0, std::memory_order_relaxed);
}

FlightRecorder::Slot* FlightRecorder::slot_of(std::uint32_t trace_id) const {
  if (slot_count_ == 0 || trace_id == 0) return nullptr;
  return &slots_[trace_id & (slot_count_ - 1)];
}

void FlightRecorder::open(std::uint32_t trace_id) {
  Slot* slot = slot_of(trace_id);
  if (slot == nullptr) return;
  const std::uint32_t occupant = slot->id.load(std::memory_order_relaxed);
  if (occupant != 0 && occupant != trace_id) {
    // The previous frame in this slot never reached a verdict (e.g. it
    // was swallowed by a dead endpoint). Its buffer is discarded.
    evicted_.fetch_add(1, std::memory_order_relaxed);
  }
  slot->count.store(0, std::memory_order_relaxed);
  slot->id.store(trace_id, std::memory_order_release);
  opened_.fetch_add(1, std::memory_order_relaxed);
}

bool FlightRecorder::is_open(std::uint32_t trace_id) const {
  const Slot* slot = slot_of(trace_id);
  return slot != nullptr && slot->id.load(std::memory_order_acquire) == trace_id;
}

bool FlightRecorder::try_record(const TraceEvent& e) {
  Slot* slot = slot_of(e.trace_id);
  if (slot == nullptr || slot->id.load(std::memory_order_acquire) != e.trace_id) {
    return false;
  }
  if (is_terminal_drop(e)) {
    drop_flushed_.fetch_add(1, std::memory_order_relaxed);
    flush(*slot, &e, ClientId{e.client}, FrameId{e.frame}, e.ts, e.trace_id,
          RetainReason::kDrop);
    return true;
  }
  const std::uint32_t idx = slot->count.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kEventsPerBuffer) {
    truncated_.fetch_add(1, std::memory_order_relaxed);
    return true;  // consumed: a truncated frame must not half-spill into the ring
  }
  slot->events[idx] = e;
  return true;
}

void FlightRecorder::flush(Slot& slot, const TraceEvent* extra, ClientId client,
                           FrameId frame, SimTime ts, std::uint32_t trace_id,
                           RetainReason reason) {
  auto& tracer = Tracer::instance();
  const std::uint32_t buffered =
      std::min<std::uint32_t>(slot.count.load(std::memory_order_relaxed),
                              static_cast<std::uint32_t>(kEventsPerBuffer));
  tracer.append(slot.events, buffered);
  if (extra != nullptr) tracer.append(extra, 1);

  TraceEvent retained{};
  retained.ts = ts;
  retained.name = spans::kRetained;
  retained.value = static_cast<double>(reason);
  retained.frame = frame.value();
  retained.client = client.value();
  retained.track = kClientTrackBase + client.value();
  retained.trace_id = trace_id;
  retained.stage = Stage::kResult;
  retained.phase = TracePhase::kInstant;
  tracer.append(&retained, 1);

  slot.count.store(0, std::memory_order_relaxed);
  slot.id.store(0, std::memory_order_release);
}

bool FlightRecorder::promote(std::uint32_t trace_id, ClientId client, FrameId frame,
                             SimTime ts, RetainReason reason) {
  Slot* slot = slot_of(trace_id);
  if (slot == nullptr || slot->id.load(std::memory_order_acquire) != trace_id) {
    return false;
  }
  promoted_.fetch_add(1, std::memory_order_relaxed);
  flush(*slot, nullptr, client, frame, ts, trace_id, reason);
  return true;
}

bool FlightRecorder::recycle(std::uint32_t trace_id) {
  Slot* slot = slot_of(trace_id);
  if (slot == nullptr || slot->id.load(std::memory_order_acquire) != trace_id) {
    return false;
  }
  slot->count.store(0, std::memory_order_relaxed);
  slot->id.store(0, std::memory_order_release);
  recycled_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

FlightRecorder::Stats FlightRecorder::stats() const {
  Stats s;
  s.opened = opened_.load(std::memory_order_relaxed);
  s.promoted = promoted_.load(std::memory_order_relaxed);
  s.drop_flushed = drop_flushed_.load(std::memory_order_relaxed);
  s.recycled = recycled_.load(std::memory_order_relaxed);
  s.evicted = evicted_.load(std::memory_order_relaxed);
  s.truncated = truncated_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mar::telemetry
