#include "telemetry/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <string_view>
#include <tuple>

#include "common/parallel.h"
#include "telemetry/flight_recorder.h"

namespace mar::telemetry {
namespace {

// Pairing key for begin/end events. Names are compared by content (two
// translation units may hold distinct copies of the same literal).
using SpanKey = std::tuple<std::uint32_t, std::string_view, std::uint32_t, std::uint64_t,
                           std::uint8_t>;

SpanKey key_of(const TraceEvent& e) {
  return {e.track, e.name, e.client, e.frame, static_cast<std::uint8_t>(e.stage)};
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_us(SimTime ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1000.0);
  return buf;
}

std::string fmt_val(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_enabled(bool on) {
  if (on && events_.empty()) reserve(kDefaultCapacity);
  enabled_.store(on, std::memory_order_relaxed);
}

void Tracer::reserve(std::size_t capacity) {
  events_.assign(capacity, TraceEvent{});
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

void Tracer::clear() {
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

void Tracer::record(std::uint32_t track, const char* name, SimTime ts, SimDuration dur,
                    ClientId client, FrameId frame, Stage stage, TracePhase phase,
                    double value, std::uint32_t trace_id) {
  if (!enabled()) return;
  TraceEvent e;
  e.ts = ts;
  e.dur = dur;
  e.value = value;
  e.name = name;
  e.frame = frame.value();
  e.client = client.value();
  e.track = track;
  e.trace_id = trace_id;
  e.stage = stage;
  e.phase = phase;
  e.lane = static_cast<std::uint16_t>(parallel_lane());

  // Tail retention: flight-recorded frames buffer their events until
  // the completion-point verdict instead of going durable immediately.
  if (trace_id != 0 && flight_recording_enabled() &&
      FlightRecorder::instance().try_record(e)) {
    return;
  }

  const std::uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= events_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_[idx] = e;
}

std::size_t Tracer::append(const TraceEvent* events, std::size_t n) {
  if (!enabled() || n == 0) return 0;
  const std::uint64_t start = next_.fetch_add(n, std::memory_order_relaxed);
  if (start >= events_.size()) {
    dropped_.fetch_add(n, std::memory_order_relaxed);
    return 0;
  }
  const std::size_t fit =
      std::min<std::size_t>(n, events_.size() - static_cast<std::size_t>(start));
  std::copy(events, events + fit, events_.begin() + static_cast<std::ptrdiff_t>(start));
  if (fit < n) dropped_.fetch_add(n - fit, std::memory_order_relaxed);
  return fit;
}

void Tracer::set_track_name(std::uint32_t track, std::string name) {
  std::lock_guard<std::mutex> lk(meta_mu_);
  track_names_[track] = std::move(name);
}

std::string Tracer::track_name(std::uint32_t track) const {
  std::lock_guard<std::mutex> lk(meta_mu_);
  auto it = track_names_.find(track);
  return it == track_names_.end() ? "track#" + std::to_string(track) : it->second;
}

std::unordered_map<std::uint32_t, std::string> Tracer::track_names() const {
  std::lock_guard<std::mutex> lk(meta_mu_);
  return track_names_;
}

std::size_t Tracer::size() const {
  return std::min<std::uint64_t>(next_.load(std::memory_order_relaxed), events_.size());
}

std::vector<TraceEvent> Tracer::snapshot() const {
  return {events_.begin(), events_.begin() + static_cast<std::ptrdiff_t>(size())};
}

std::vector<TrackSpanStats> Tracer::replica_spans(const char* name,
                                                  SimTime min_end_ts) const {
  // Pair begins with ends per key in record order (spans of one key on
  // one single-threaded track never overlap, but a stack keeps this
  // correct even if they did).
  std::map<SpanKey, std::vector<SimTime>> open;
  std::map<std::uint32_t, TrackSpanStats> per_track;
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& e = events_[i];
    if (std::strcmp(e.name, name) != 0) continue;
    if (e.phase == TracePhase::kBegin) {
      open[key_of(e)].push_back(e.ts);
    } else if (e.phase == TracePhase::kEnd || e.phase == TracePhase::kComplete) {
      SimTime begin_ts = 0;
      if (e.phase == TracePhase::kComplete) {
        begin_ts = e.ts;
      } else {
        auto it = open.find(key_of(e));
        if (it == open.end() || it->second.empty()) continue;  // unmatched end
        begin_ts = it->second.back();
        it->second.pop_back();
      }
      const SimTime end_ts = e.phase == TracePhase::kComplete ? e.ts + e.dur : e.ts;
      if (end_ts < min_end_ts) continue;
      TrackSpanStats& t = per_track[e.track];
      t.track = e.track;
      t.stage = e.stage;
      t.ms.add(to_millis(end_ts - begin_ts));
    }
  }
  std::vector<TrackSpanStats> out;
  out.reserve(per_track.size());
  for (auto& [_, stats] : per_track) out.push_back(std::move(stats));
  return out;
}

std::array<Accumulator, kNumStages> Tracer::stage_spans(const char* name,
                                                        SimTime min_end_ts) const {
  std::array<Accumulator, kNumStages> out;
  std::map<SpanKey, std::vector<SimTime>> open;
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& e = events_[i];
    if (std::strcmp(e.name, name) != 0) continue;
    const auto stage_idx = static_cast<std::size_t>(e.stage);
    if (e.phase == TracePhase::kBegin) {
      open[key_of(e)].push_back(e.ts);
    } else if (e.phase == TracePhase::kComplete) {
      if (stage_idx < kNumStages && e.ts + e.dur >= min_end_ts) {
        out[stage_idx].add(to_millis(e.dur));
      }
    } else if (e.phase == TracePhase::kEnd) {
      auto it = open.find(key_of(e));
      if (it == open.end() || it->second.empty()) continue;
      const SimTime begin_ts = it->second.back();
      it->second.pop_back();
      if (stage_idx < kNumStages && e.ts >= min_end_ts) {
        out[stage_idx].add(to_millis(e.ts - begin_ts));
      }
    }
  }
  return out;
}

std::string Tracer::chrome_trace_json() const {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&]() -> std::ostringstream& {
    if (!first) out << ",\n";
    first = false;
    return out;
  };

  // Track ("process") names so Perfetto labels each replica's lane.
  {
    std::lock_guard<std::mutex> lk(meta_mu_);
    for (const auto& [track, name] : track_names_) {
      sep() << "{\"ph\":\"M\",\"pid\":" << track << ",\"tid\":0,\"name\":\"process_name\","
            << "\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
    }
  }

  // Trace ids link spans back to retained flight-recorder timelines;
  // omitted when zero so untraced events keep their old shape.
  auto trace_arg = [](std::uint32_t id) {
    return id ? ",\"trace\":" + std::to_string(id) : std::string();
  };

  std::map<SpanKey, std::vector<std::size_t>> open;
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& e = events_[i];
    const char* stage_name = to_string(e.stage);
    switch (e.phase) {
      case TracePhase::kBegin:
        open[key_of(e)].push_back(i);
        break;
      case TracePhase::kEnd: {
        auto it = open.find(key_of(e));
        if (it == open.end() || it->second.empty()) break;  // clipped begin
        const TraceEvent& b = events_[it->second.back()];
        it->second.pop_back();
        sep() << "{\"ph\":\"X\",\"pid\":" << b.track << ",\"tid\":" << b.lane
              << ",\"ts\":" << fmt_us(b.ts) << ",\"dur\":" << fmt_us(e.ts - b.ts)
              << ",\"name\":\"" << b.name << "\",\"cat\":\"" << stage_name
              << "\",\"args\":{\"client\":" << b.client << ",\"frame\":" << b.frame
              << trace_arg(b.trace_id) << "}}";
        break;
      }
      case TracePhase::kComplete:
        sep() << "{\"ph\":\"X\",\"pid\":" << e.track << ",\"tid\":" << e.lane
              << ",\"ts\":" << fmt_us(e.ts) << ",\"dur\":" << fmt_us(e.dur)
              << ",\"name\":\"" << e.name << "\",\"cat\":\"" << stage_name
              << "\",\"args\":{\"client\":" << e.client << ",\"frame\":" << e.frame
              << trace_arg(e.trace_id) << "}}";
        break;
      case TracePhase::kInstant:
        sep() << "{\"ph\":\"i\",\"pid\":" << e.track << ",\"tid\":" << e.lane
              << ",\"ts\":" << fmt_us(e.ts) << ",\"name\":\"" << e.name
              << "\",\"cat\":\"" << stage_name << "\",\"s\":\"p\",\"args\":{\"client\":"
              << e.client << ",\"frame\":" << e.frame << trace_arg(e.trace_id) << "}}";
        break;
      case TracePhase::kCounter:
        sep() << "{\"ph\":\"C\",\"pid\":" << e.track << ",\"ts\":" << fmt_us(e.ts)
              << ",\"name\":\"" << e.name << "\",\"args\":{\"value\":" << fmt_val(e.value)
              << "}}";
        break;
    }
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
  return out.str();
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  const std::string body = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

std::string Tracer::prometheus_text() const {
  std::ostringstream out;
  out << "# HELP mar_trace_events_total Events recorded by the tracer.\n"
      << "# TYPE mar_trace_events_total counter\n"
      << "mar_trace_events_total " << size() << "\n"
      << "# HELP mar_trace_events_dropped_total Events lost to a full trace buffer.\n"
      << "# TYPE mar_trace_events_dropped_total counter\n"
      << "mar_trace_events_dropped_total " << dropped() << "\n";

  static constexpr const char* kSpanNames[] = {
      spans::kService, spans::kSidecarQueue, spans::kSocketBuffer, spans::kRpcHandoff,
      spans::kStateFetch, spans::kLink, spans::kFrameE2e,
  };
  out << "# HELP mar_trace_span_ms Mean latency of matched trace spans.\n"
      << "# TYPE mar_trace_span_ms gauge\n"
      << "# HELP mar_trace_span_count Number of matched trace spans.\n"
      << "# TYPE mar_trace_span_count gauge\n";
  for (const char* name : kSpanNames) {
    const auto per_stage = stage_spans(name);
    for (std::size_t s = 0; s < kNumStages; ++s) {
      if (per_stage[s].count() == 0) continue;
      const char* stage = to_string(static_cast<Stage>(s));
      out << "mar_trace_span_ms{span=\"" << name << "\",stage=\"" << stage << "\"} "
          << fmt_val(per_stage[s].mean()) << "\n";
      out << "mar_trace_span_count{span=\"" << name << "\",stage=\"" << stage << "\"} "
          << per_stage[s].count() << "\n";
    }
  }

  // Instant-event tallies (drops, losses, timeouts) by stage.
  std::map<std::pair<std::string, std::uint8_t>, std::uint64_t> instants;
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& e = events_[i];
    if (e.phase != TracePhase::kInstant) continue;
    ++instants[{e.name, static_cast<std::uint8_t>(e.stage)}];
  }
  out << "# HELP mar_trace_instants_total Point events (drops, losses, timeouts).\n"
      << "# TYPE mar_trace_instants_total counter\n";
  for (const auto& [key, count] : instants) {
    out << "mar_trace_instants_total{event=\"" << key.first << "\",stage=\""
        << to_string(static_cast<Stage>(key.second)) << "\"} " << count << "\n";
  }
  return out.str();
}

std::string Tracer::event_log_text() const {
  // One line per event, whitespace-separated, name last (names are
  // static identifiers without spaces; track names may contain spaces
  // and therefore go last on their own lines too).
  std::ostringstream out;
  out << "# mar-trace-events v1\n";
  {
    std::lock_guard<std::mutex> lk(meta_mu_);
    std::map<std::uint32_t, std::string> ordered(track_names_.begin(),
                                                 track_names_.end());
    for (const auto& [track, name] : ordered) {
      out << "track " << track << " " << name << "\n";
    }
  }
  const std::size_t n = size();
  char val[48];
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& e = events_[i];
    std::snprintf(val, sizeof(val), "%.9g", e.value);
    out << "ev " << e.ts << " " << e.dur << " " << val << " "
        << static_cast<unsigned>(e.phase) << " " << static_cast<unsigned>(e.stage) << " "
        << e.track << " " << e.lane << " " << e.client << " " << e.frame << " "
        << e.trace_id << " " << e.name << "\n";
  }
  return out.str();
}

bool Tracer::write_event_log(const std::string& path) const {
  const std::string body = event_log_text();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

SimTime trace_wallclock_now() {
  static const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace mar::telemetry
