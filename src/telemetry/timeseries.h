// Fixed-interval bucketed time series (e.g. per-second throughput,
// drop ratio over experiment time for the sidecar analytics figures).
#pragma once

#include <cstddef>
#include <vector>

#include "common/time.h"

namespace mar::telemetry {

class TimeSeries {
 public:
  explicit TimeSeries(SimDuration bucket_width = kSecond) : width_(bucket_width) {}

  // Add `value` to the bucket containing time `t`.
  void add(SimTime t, double value = 1.0) {
    const std::size_t idx = bucket_index(t);
    if (idx >= sums_.size()) {
      sums_.resize(idx + 1, 0.0);
      counts_.resize(idx + 1, 0);
    }
    sums_[idx] += value;
    ++counts_[idx];
  }

  [[nodiscard]] std::size_t buckets() const { return sums_.size(); }
  [[nodiscard]] SimDuration bucket_width() const { return width_; }

  // Sum of values in bucket i (0 if out of range).
  [[nodiscard]] double sum_at(std::size_t i) const { return i < sums_.size() ? sums_[i] : 0.0; }
  [[nodiscard]] std::uint64_t count_at(std::size_t i) const {
    return i < counts_.size() ? counts_[i] : 0;
  }
  [[nodiscard]] double mean_at(std::size_t i) const {
    return count_at(i) ? sum_at(i) / static_cast<double>(count_at(i)) : 0.0;
  }
  // Event rate (count / bucket width in seconds) — e.g. FPS.
  [[nodiscard]] double rate_at(std::size_t i) const {
    return static_cast<double>(count_at(i)) / to_seconds(width_);
  }

  [[nodiscard]] std::size_t bucket_index(SimTime t) const {
    return t < 0 ? 0 : static_cast<std::size_t>(t / width_);
  }

  void reset() {
    sums_.clear();
    counts_.clear();
  }

 private:
  SimDuration width_;
  std::vector<double> sums_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace mar::telemetry
