#include "hw/resource.h"

#include <utility>

namespace mar::hw {

void ResourcePool::account() {
  const SimTime now = loop_.now();
  busy_integral_ += static_cast<double>(in_use_) * static_cast<double>(now - last_change_);
  last_change_ = now;
}

void ResourcePool::take(std::uint32_t units) {
  in_use_ += units;
  if (in_use_ > peak_in_use_) peak_in_use_ = in_use_;
}

void ResourcePool::acquire(std::uint32_t units, Grant on_grant) {
  if (units > capacity_) return;  // can never be satisfied; drop silently
  if (in_use_ + units <= capacity_ && waiters_.empty()) {
    account();
    take(units);
    on_grant();
    return;
  }
  waiters_.push_back(Waiter{units, std::move(on_grant)});
}

std::uint32_t ResourcePool::try_acquire(std::uint32_t units) {
  if (!waiters_.empty()) return 0;  // frame-level requests have priority
  const std::uint32_t free_units = in_use_ >= capacity_ ? 0 : capacity_ - in_use_;
  const std::uint32_t granted = units < free_units ? units : free_units;
  if (granted == 0) return 0;
  account();
  take(granted);
  return granted;
}

void ResourcePool::release(std::uint32_t units) {
  account();
  in_use_ = units > in_use_ ? 0 : in_use_ - units;
  while (!waiters_.empty() && in_use_ + waiters_.front().units <= capacity_) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    take(w.units);
    w.on_grant();
  }
}

void ResourcePool::set_capacity(std::uint32_t capacity) {
  account();
  capacity_ = capacity;
  while (!waiters_.empty() && in_use_ + waiters_.front().units <= capacity_) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    take(w.units);
    w.on_grant();
  }
}

void ResourcePool::reset_window() {
  account();
  window_start_ = loop_.now();
  last_change_ = window_start_;
  busy_integral_ = 0.0;
  peak_in_use_ = in_use_;
}

double ResourcePool::busy_integral() const {
  return busy_integral_ +
         static_cast<double>(in_use_) * static_cast<double>(loop_.now() - last_change_);
}

double ResourcePool::utilization() const {
  const SimTime now = loop_.now();
  const double elapsed = static_cast<double>(now - window_start_);
  if (elapsed <= 0.0 || capacity_ == 0) return 0.0;
  const double integral =
      busy_integral_ + static_cast<double>(in_use_) * static_cast<double>(now - last_change_);
  return integral / (elapsed * static_cast<double>(capacity_));
}

void MemoryAccount::account() {
  const SimTime now = loop_.now();
  usage_integral_ += static_cast<double>(used_) * static_cast<double>(now - last_change_);
  last_change_ = now;
}

void MemoryAccount::allocate(std::uint64_t bytes) {
  account();
  used_ += bytes;
  if (used_ > peak_) peak_ = used_;
}

void MemoryAccount::free(std::uint64_t bytes) {
  account();
  used_ = bytes > used_ ? 0 : used_ - bytes;
}

void MemoryAccount::reset_window() {
  account();
  window_start_ = loop_.now();
  last_change_ = window_start_;
  usage_integral_ = 0.0;
  peak_ = used_;
}

double MemoryAccount::mean_used() const {
  const SimTime now = loop_.now();
  const double elapsed = static_cast<double>(now - window_start_);
  if (elapsed <= 0.0) return static_cast<double>(used_);
  const double integral =
      usage_integral_ + static_cast<double>(used_) * static_cast<double>(now - last_change_);
  return integral / elapsed;
}

}  // namespace mar::hw
