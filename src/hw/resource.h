// Simulated machine resources.
//
// A ResourcePool models a pool of identical units (CPU cores, or a GPU
// treated as one exclusive unit). Acquisition is asynchronous and FIFO:
// when no unit is free the request queues, which is how compute
// contention between co-located services arises in the simulator. The
// pool also integrates busy-time so experiments can report utilization
// normalized by capacity, exactly like the paper's CPU%/GPU% metrics.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/time.h"
#include "sim/event_loop.h"

namespace mar::hw {

class ResourcePool {
 public:
  using Grant = std::function<void()>;

  ResourcePool(sim::EventLoop& loop, std::uint32_t capacity)
      : loop_(loop), capacity_(capacity) {}

  // Request `units` units; `on_grant` runs (possibly immediately, in
  // virtual time) once they are allocated. Caller must release() later.
  void acquire(std::uint32_t units, Grant on_grant);

  // Non-queuing acquire for fluid cohort holdings: take `units` now if
  // they fit (and no frame-level waiter is queued ahead), else take
  // nothing. Returns the units actually taken; caller releases them.
  std::uint32_t try_acquire(std::uint32_t units);

  // Return `units` units and hand them to waiting requests.
  void release(std::uint32_t units);

  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint32_t in_use() const { return in_use_; }
  [[nodiscard]] std::size_t waiting() const { return waiters_.size(); }

  // Fault injection ("brownout"): change capacity at runtime. Shrinking
  // lets current holders finish (in_use_ may exceed the new capacity
  // until they release); growing immediately drains waiters that now
  // fit. Requests for more units than the current capacity queue until
  // capacity is restored.
  void set_capacity(std::uint32_t capacity);

  // --- Utilization accounting ---------------------------------------
  // Restart the measurement window at the current virtual time (also
  // rebases the high-water mark to the current allocation).
  void reset_window();
  // Mean utilization in [window start, now], normalized to capacity [0,1].
  [[nodiscard]] double utilization() const;
  // Most units simultaneously held since the window start — peak
  // utilization where utilization() is the mean.
  [[nodiscard]] std::uint32_t peak_in_use() const { return peak_in_use_; }
  // Busy-time integral (units * ns) since the window start, including
  // the in-progress interval; deltas of this give per-interval means
  // for utilization timelines.
  [[nodiscard]] double busy_integral() const;

 private:
  struct Waiter {
    std::uint32_t units;
    Grant on_grant;
  };

  void account();  // fold busy-time since last change into the integral

  void take(std::uint32_t units);  // in_use_ += units, tracking the peak

  sim::EventLoop& loop_;
  std::uint32_t capacity_;
  std::uint32_t in_use_ = 0;
  std::uint32_t peak_in_use_ = 0;
  std::deque<Waiter> waiters_;

  SimTime window_start_ = 0;
  SimTime last_change_ = 0;
  double busy_integral_ = 0.0;  // sum of in_use * dt (unit: units * ns)
};

// Memory accounting for one machine: tracks current, peak, and a
// time-weighted mean over the measurement window.
class MemoryAccount {
 public:
  MemoryAccount(sim::EventLoop& loop, std::uint64_t capacity_bytes)
      : loop_(loop), capacity_(capacity_bytes) {}

  void allocate(std::uint64_t bytes);
  void free(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t used() const { return used_; }
  [[nodiscard]] std::uint64_t peak() const { return peak_; }
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }

  void reset_window();
  // Time-weighted mean usage in bytes over the window.
  [[nodiscard]] double mean_used() const;

 private:
  void account();

  sim::EventLoop& loop_;
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t peak_ = 0;

  SimTime window_start_ = 0;
  SimTime last_change_ = 0;
  double usage_integral_ = 0.0;
};

}  // namespace mar::hw
