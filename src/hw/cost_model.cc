#include "hw/cost_model.h"

#include <algorithm>
#include <cmath>

namespace mar::hw {
namespace {
constexpr std::uint64_t MiB = 1024ULL * 1024ULL;
constexpr std::uint64_t GiB = 1024ULL * MiB;
}  // namespace

CostModel CostModel::standard() {
  CostModel m;
  // Calibration targets (paper §4, single client on one edge server):
  //   sum of service times ~32 ms -> E2E ~40 ms with network + queueing,
  //   sift the heaviest stage, primary CPU-only.
  m.stage_mut(Stage::kPrimary) = StageCost{millis(3.4), 0, 0.12, 400 * MiB};
  m.stage_mut(Stage::kSift) = StageCost{millis(1.5), millis(11.0), 0.20, 1600 * MiB};
  m.stage_mut(Stage::kEncoding) = StageCost{millis(0.8), millis(8.5), 0.15, 1000 * MiB};
  m.stage_mut(Stage::kLsh) = StageCost{millis(0.5), millis(2.5), 0.15, 600 * MiB};
  m.stage_mut(Stage::kMatching) = StageCost{millis(1.0), millis(8.5), 0.18, 1100 * MiB};

  m.state_fetch_cpu = millis(1.2);
  m.state_fetch_timeout = millis(22.0);
  m.state_timeout = seconds(4.0);
  m.state_entry_bytes = 24 * MiB;

  m.sidecar_rpc_overhead = micros(700.0);
  m.sidecar_threshold = millis(100.0);
  m.sidecar_client_buffer_bytes = 1 * GiB;

  m.recognition_failure_prob = 0.10;

  // Fault plane: a respawned container needs weights + CUDA context
  // (~600 ms on the testbed's servers); a machine reboot costs on the
  // order of an OS boot. Retries default off so the no-fault event
  // trajectory is unchanged.
  m.instance_cold_start = millis(600.0);
  m.reboot_cold_start = seconds(2.0);
  m.state_fetch_retries = 0;
  m.state_fetch_backoff = millis(4.0);
  return m;
}

CostModel CostModel::fast_detector() {
  CostModel m = standard();
  // An accelerator-style SIFT (paper §5, [59]) at ~2.5x the extraction
  // rate; descriptors unchanged so downstream stages keep their costs.
  m.stage_mut(Stage::kSift).gpu_time = millis(4.5);
  m.stage_mut(Stage::kSift).cpu_time = millis(1.0);
  return m;
}

SimDuration CostModel::sample(SimDuration mean, double cv, Rng& rng) {
  if (mean <= 0) return 0;
  if (cv <= 0.0) return mean;
  const double m = static_cast<double>(mean);
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(m) - sigma2 / 2.0;
  const double x = std::exp(mu + std::sqrt(sigma2) * rng.next_gaussian());
  return static_cast<SimDuration>(std::clamp(x, 0.3 * m, 5.0 * m));
}

}  // namespace mar::hw
