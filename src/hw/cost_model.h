// Per-stage compute cost model.
//
// The benchmark harness does not run the real vision kernels (the
// paper's numbers come from CUDA kernels on RTX/A40/V100 GPUs); instead
// each stage charges a calibrated compute time on the simulated
// machine's CPU/GPU pools. Constants are calibrated so that a single
// client on one edge server reproduces the paper's ≈25 FPS at ≈40 ms
// E2E; all load-dependent behaviour then emerges from the simulation.
// See DESIGN.md §2 and EXPERIMENTS.md for the calibration narrative.
#pragma once

#include <array>
#include <cstdint>

#include "common/rng.h"
#include "common/time.h"
#include "common/types.h"

namespace mar::hw {

struct StageCost {
  // Mean host-CPU time per frame on a speed-1.0 CPU.
  SimDuration cpu_time = 0;
  // Mean GPU kernel time per frame on a speed-1.0 GPU (0 = CPU-only).
  SimDuration gpu_time = 0;
  // Lognormal coefficient of variation of the compute time.
  double noise_cv = 0.15;
  // Resident footprint of the deployed container (weights, CUDA ctx).
  std::uint64_t base_memory_bytes = 0;
};

class CostModel {
 public:
  // Calibrated model for the paper's SIFT-based pipeline.
  static CostModel standard();
  // §5 "substituting SIFT with [59]": a faster feature extractor.
  // Shifts the saturation point but keeps the architecture's behaviour.
  static CostModel fast_detector();

  [[nodiscard]] const StageCost& stage(Stage s) const {
    return stages_[static_cast<std::size_t>(s)];
  }
  StageCost& stage_mut(Stage s) { return stages_[static_cast<std::size_t>(s)]; }

  // Sample a noisy compute time around `mean` (lognormal, clamped).
  [[nodiscard]] static SimDuration sample(SimDuration mean, double cv, Rng& rng);

  // --- scAtteR-specific costs ---------------------------------------
  // sift serving a state-fetch request (serialize stored features).
  SimDuration state_fetch_cpu = 0;
  // matching's wait budget for sift's state response before giving up.
  SimDuration state_fetch_timeout = 0;
  // How long sift retains un-fetched frame state before eviction.
  SimDuration state_timeout = 0;
  // In-memory size of one stored frame state (features + patches).
  std::uint64_t state_entry_bytes = 0;

  // --- scAtteR++-specific costs -------------------------------------
  // Sidecar gRPC hand-off overhead charged per dispatched request.
  SimDuration sidecar_rpc_overhead = 0;
  // Staleness threshold: frames older than this are dropped at dequeue
  // (paper uses the 100 ms XR latency budget).
  SimDuration sidecar_threshold = 0;
  // Per-connected-client buffer footprint each sidecar pre-allocates.
  std::uint64_t sidecar_client_buffer_bytes = 0;

  // Probability that a frame fails recognition for vision reasons
  // (insufficient matches / pose rejected), independent of load.
  double recognition_failure_prob = 0.0;

  // --- fault / recovery costs ---------------------------------------
  // Cold start of a (re)spawned service instance: container pull,
  // process init, CUDA context creation. Charged by the orchestrator's
  // failover respawn and by post-reboot instance restarts.
  SimDuration instance_cold_start = 0;
  // Machine power-cycle + OS boot before any instance can restart
  // (added by the fault injector to a reboot's outage window).
  SimDuration reboot_cold_start = 0;
  // Bounded retry of matching's state fetch after a timeout. 0 keeps
  // the original fail-on-first-timeout behaviour (and the original
  // event/RNG trajectory); each retry re-resolves the pinned sift
  // replica and waits another state_fetch_timeout.
  std::uint32_t state_fetch_retries = 0;
  // Backoff between a fetch timeout and its retry.
  SimDuration state_fetch_backoff = 0;

 private:
  std::array<StageCost, kNumStages> stages_{};
};

}  // namespace mar::hw
