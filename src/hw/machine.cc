#include "hw/machine.h"

#include <algorithm>

namespace mar::hw {
namespace {
constexpr std::uint64_t GiB = 1024ULL * 1024ULL * 1024ULL;
}

MachineSpec MachineSpec::edge1() {
  MachineSpec s;
  s.name = "E1";
  s.cpu_cores = 16;  // Intel i9
  s.cpu_speed_factor = 1.0;
  s.memory_bytes = 128 * GiB;
  s.gpus = {GpuModel{"geforce-rtx", 1.0}, GpuModel{"geforce-rtx", 1.0}};
  return s;
}

MachineSpec MachineSpec::edge2() {
  MachineSpec s;
  s.name = "E2";
  s.cpu_cores = 32;  // 2x EPYC 7302 (16C each)
  s.cpu_speed_factor = 1.05;
  s.memory_bytes = 264 * GiB;
  s.gpus = {GpuModel{"ampere", 1.25}, GpuModel{"ampere", 1.25}};
  return s;
}

MachineSpec MachineSpec::cloud() {
  MachineSpec s;
  s.name = "Cloud";
  s.cpu_cores = 4;  // Broadwell E5-2686 v4 vCPUs
  s.cpu_speed_factor = 0.85;
  s.memory_bytes = 64 * GiB;
  // V100 is fast hardware; the sm-architecture mismatch and
  // virtualization penalties are applied separately, leaving it a net
  // ~1.0x of the RTX baseline (paper §4 Insight V).
  s.gpus = {GpuModel{"tesla", 2.6, 2}};
  s.virtualized = true;
  return s;
}

MachineSpec MachineSpec::client_nuc() {
  MachineSpec s;
  s.name = "NUC";
  s.cpu_cores = 4;
  s.cpu_speed_factor = 0.7;
  s.memory_bytes = 32 * GiB;
  return s;
}

Machine::Machine(sim::EventLoop& loop, MachineId id, MachineSpec spec)
    : loop_(loop),
      id_(id),
      spec_(std::move(spec)),
      cpu_(loop, spec_.cpu_cores),
      memory_(loop, spec_.memory_bytes) {
  gpus_.reserve(spec_.gpus.size());
  for (std::size_t i = 0; i < spec_.gpus.size(); ++i) {
    gpus_.push_back(std::make_unique<ResourcePool>(loop_, spec_.gpus[i].slots));
    gpu_pin_counts_.push_back(0);
  }
}

std::size_t Machine::pin_service_to_gpu() {
  if (gpus_.empty()) return 0;
  const auto it = std::min_element(gpu_pin_counts_.begin(), gpu_pin_counts_.end());
  const std::size_t idx = static_cast<std::size_t>(it - gpu_pin_counts_.begin());
  ++gpu_pin_counts_[idx];
  return idx;
}

double Machine::cpu_time_scale() const {
  double scale = 1.0 / spec_.cpu_speed_factor;
  if (spec_.virtualized) scale *= kVirtualizationPenalty;
  return scale;
}

double Machine::gpu_time_scale(std::size_t gpu_index) const {
  if (gpu_index >= spec_.gpus.size()) return cpu_time_scale();
  double scale = 1.0 / spec_.gpus[gpu_index].speed_factor;
  if (spec_.virtualized) scale *= kVirtualizationPenalty;
  // GPU multi-tenancy: co-locating several services on one GPU costs
  // context switching and cache pressure beyond pure queueing (the
  // paper's single-machine C1/C2 deployments "consume considerably
  // more CPU and GPU" and run slower than the distributed C21).
  const std::uint32_t pinned = gpu_pin_counts_[gpu_index];
  if (pinned > 1) {
    scale *= std::min(1.0 + kGpuColocationPenalty * static_cast<double>(pinned - 1),
                      kGpuColocationPenaltyCap);
  }
  return scale;
}

void Machine::reset_windows() {
  cpu_.reset_window();
  for (auto& g : gpus_) g->reset_window();
  memory_.reset_window();
}

}  // namespace mar::hw
