// Machine models for the paper's testbed.
//
// E1: Intel i9, 2x NVIDIA RTX 2080, 128 GB.
// E2: 2x AMD EPYC 7302, 2x NVIDIA A40, 264 GB.
// Cloud: 4x Broadwell vCPU, NVIDIA Tesla V100 (virtualized), 64 GB.
//
// GPU architecture differences become per-architecture speed factors
// (paper Insight V: QoS varies with the underlying GPU/CPU architecture
// even with identical container images). The cloud V100 factor is below
// 1.0: the paper attributes part of the cloud slowdown to the image not
// being optimized for the Tesla sm architecture.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "hw/resource.h"
#include "sim/event_loop.h"

namespace mar::hw {

struct GpuModel {
  std::string arch;           // "geforce-rtx", "ampere", "tesla"
  double speed_factor = 1.0;  // relative to the RTX 2080 baseline
  // Concurrent kernel slots (large datacenter GPUs run several CUDA
  // contexts side by side via MPS; consumer cards effectively one).
  std::uint32_t slots = 1;
};

struct MachineSpec {
  std::string name;
  std::uint32_t cpu_cores = 1;
  double cpu_speed_factor = 1.0;
  std::uint64_t memory_bytes = 0;
  std::vector<GpuModel> gpus;
  // True for cloud VMs: adds virtualization overhead to compute times.
  bool virtualized = false;

  static MachineSpec edge1();
  static MachineSpec edge2();
  static MachineSpec cloud();
  static MachineSpec client_nuc();
};

// A running machine in the simulator: CPU pool, one pool per GPU,
// memory accounting.
class Machine {
 public:
  Machine(sim::EventLoop& loop, MachineId id, MachineSpec spec);

  [[nodiscard]] MachineId id() const { return id_; }
  [[nodiscard]] const MachineSpec& spec() const { return spec_; }

  [[nodiscard]] ResourcePool& cpu() { return cpu_; }
  [[nodiscard]] std::size_t num_gpus() const { return gpus_.size(); }
  [[nodiscard]] ResourcePool& gpu(std::size_t i) { return *gpus_.at(i); }
  [[nodiscard]] const GpuModel& gpu_model(std::size_t i) const { return spec_.gpus.at(i); }
  [[nodiscard]] MemoryAccount& memory() { return memory_; }

  // Pick the GPU with the fewest pinned services (placement-time
  // assignment; services stay pinned to their GPU).
  std::size_t pin_service_to_gpu();

  // Compute-time multiplier for work on this machine: divides by the
  // speed factor and applies the virtualization penalty.
  [[nodiscard]] double cpu_time_scale() const;
  [[nodiscard]] double gpu_time_scale(std::size_t gpu_index) const;

  void reset_windows();

 private:
  sim::EventLoop& loop_;
  MachineId id_;
  MachineSpec spec_;
  ResourcePool cpu_;
  std::vector<std::unique_ptr<ResourcePool>> gpus_;
  std::vector<std::uint32_t> gpu_pin_counts_;
  MemoryAccount memory_;
};

inline constexpr double kVirtualizationPenalty = 1.18;  // +18 % compute time
// Extra GPU kernel time per additional service sharing the same GPU,
// capped (CUDA context switching overhead saturates).
inline constexpr double kGpuColocationPenalty = 0.15;
inline constexpr double kGpuColocationPenaltyCap = 1.30;

}  // namespace mar::hw
