// Execution substrate abstraction for the service framework.
//
// Services, sidecars, and clients are written against Runtime so that
// identical pipeline logic runs on the discrete-event simulator (for
// the benchmark harness) and on a wall-clock/in-process or UDP
// substrate (for the live examples).
#pragma once

#include <functional>

#include "common/time.h"
#include "common/types.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "wire/message.h"

namespace mar::dsp {

using DatagramHandler = std::function<void(wire::FramePacket)>;

class Runtime {
 public:
  virtual ~Runtime() = default;

  [[nodiscard]] virtual SimTime now() const = 0;
  virtual sim::EventId schedule_after(SimDuration delay, std::function<void()> fn) = 0;
  virtual void cancel(sim::EventId id) = 0;

  virtual EndpointId make_endpoint(MachineId machine, DatagramHandler handler) = 0;
  virtual void rebind_endpoint(EndpointId ep, DatagramHandler handler) = 0;
  virtual void send(EndpointId from, EndpointId to, wire::FramePacket pkt) = 0;
};

// Runtime backed by the discrete-event simulator.
class SimRuntime final : public Runtime {
 public:
  SimRuntime(sim::EventLoop& loop, sim::SimNetwork& net) : loop_(loop), net_(net) {}

  [[nodiscard]] SimTime now() const override { return loop_.now(); }
  sim::EventId schedule_after(SimDuration delay, std::function<void()> fn) override {
    return loop_.schedule_after(delay, std::move(fn));
  }
  void cancel(sim::EventId id) override { loop_.cancel(id); }

  EndpointId make_endpoint(MachineId machine, DatagramHandler handler) override {
    return net_.create_endpoint(machine, std::move(handler));
  }
  void rebind_endpoint(EndpointId ep, DatagramHandler handler) override {
    net_.rebind(ep, std::move(handler));
  }
  void send(EndpointId from, EndpointId to, wire::FramePacket pkt) override {
    net_.send(from, to, std::move(pkt));
  }

  [[nodiscard]] sim::EventLoop& loop() { return loop_; }
  [[nodiscard]] sim::SimNetwork& network() { return net_; }

 private:
  sim::EventLoop& loop_;
  sim::SimNetwork& net_;
};

// Resolves the next pipeline hop. Implemented by the orchestrator's
// semantic-addressing layer (round-robin over replicas, paper §3.2).
class Router {
 public:
  virtual ~Router() = default;

  // Endpoint of a replica of `stage` for the next hop of this frame.
  // Load-balanced (round-robin) across ready replicas.
  virtual EndpointId resolve(Stage stage, const wire::FrameHeader& header) = 0;

  // Endpoint of a specific instance (state-tied fetches cannot be
  // re-balanced: frames stay pinned to the sift replica that holds
  // their state).
  virtual EndpointId endpoint_of(InstanceId instance) = 0;
};

}  // namespace mar::dsp
