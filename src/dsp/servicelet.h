// Servicelet: the application logic of one pipeline service replica.
//
// The surrounding ServiceHost owns the ingress endpoint and policy
// (drop-when-busy for scAtteR, sidecar queue for scAtteR++); the
// servicelet only implements what to do with a dispatched packet. It
// must call host().finish_current() exactly once per dispatched packet,
// possibly after asynchronous compute and network round-trips.
#pragma once

#include "wire/message.h"

namespace mar::dsp {

class ServiceHost;

class Servicelet {
 public:
  virtual ~Servicelet() = default;

  // Called once by the host after construction.
  void attach(ServiceHost& host) {
    host_ = &host;
    on_attached();
  }

  // Handle a dispatched packet. The service is considered busy until
  // finish_current() is called on the host.
  virtual void process(wire::FramePacket pkt) = 0;

  // Offer a packet to the servicelet even while it is busy. Return
  // true to consume it (e.g. matching consuming an awaited sift state
  // response); false routes it through the normal ingress policy.
  virtual bool consume_inline(wire::FramePacket& pkt) {
    (void)pkt;
    return false;
  }

  // Called by the host when the replica is killed (crash injection /
  // failover eviction). A crashed process keeps nothing: stateful
  // servicelets drop their in-memory state here — this is what makes
  // scAtteR's in-sift frame state die with the replica while
  // scAtteR++'s in-frame state survives.
  virtual void on_killed() {}

 protected:
  virtual void on_attached() {}
  [[nodiscard]] ServiceHost& host() { return *host_; }

 private:
  ServiceHost* host_ = nullptr;
};

}  // namespace mar::dsp
