#include "dsp/service_host.h"

#include <utility>

namespace mar::dsp {

ServiceHost::ServiceHost(Runtime& rt, hw::Machine& machine, InstanceId instance,
                         HostConfig config, const hw::CostModel& costs,
                         std::unique_ptr<Servicelet> servicelet, Rng rng)
    : rt_(rt),
      machine_(machine),
      instance_(instance),
      config_(config),
      costs_(costs),
      servicelet_(std::move(servicelet)),
      rng_(rng),
      compute_(rt, machine, config.uses_gpu, rng_.fork()) {
  ingress_ = rt_.make_endpoint(machine_.id(),
                               [this](wire::FramePacket pkt) { handle_datagram(std::move(pkt)); });
  telemetry::Tracer::instance().set_track_name(
      instance_.value(), std::string(to_string(config_.stage)) + "#" +
                             std::to_string(instance_.value()) + " (" +
                             machine_.spec().name + ")");
  base_memory_ = costs_.stage(config_.stage).base_memory_bytes;
  machine_.memory().allocate(base_memory_);
  servicelet_->attach(*this);
}

ServiceHost::~ServiceHost() {
  if (!decommissioned_) {
    machine_.memory().free(base_memory_ + app_memory_);
    // Unbind the ingress handler: it captures `this`, and datagrams can
    // still be in flight toward this endpoint when a replica is
    // replaced (the network drops deliveries to unbound endpoints).
    rt_.rebind_endpoint(ingress_, nullptr);
  }
}

void ServiceHost::alloc_app_memory(std::uint64_t bytes) {
  app_memory_ += bytes;
  if (!decommissioned_) machine_.memory().allocate(bytes);
}

void ServiceHost::free_app_memory(std::uint64_t bytes) {
  const std::uint64_t actual = bytes > app_memory_ ? app_memory_ : bytes;
  app_memory_ -= actual;
  if (!decommissioned_) machine_.memory().free(actual);
}

void ServiceHost::handle_datagram(wire::FramePacket pkt) {
  ++stats_.received;
  stats_.ingress_per_sec.add(rt_.now());

  if (down_) {
    ++stats_.dropped_down;
    stats_.drops_per_sec.add(rt_.now());
    trace_instant(telemetry::spans::kDropDown, pkt.header, rt_.now());
    return;
  }

  // Awaited responses (e.g. matching waiting on sift's state) bypass
  // the ingress policy entirely.
  if (servicelet_->consume_inline(pkt)) return;

  if (config_.mode == IngressMode::kDropWhenBusy) {
    if (busy_) {
      // Busy service: the kernel socket buffer absorbs a little. Small
      // control datagrams (state fetches) get a couple of slots; large
      // frames fit at most one — beyond that, outstanding requests are
      // dropped, per the scAtteR design.
      const bool control = pkt.wire_size() <= kControlMessageBytes;
      std::size_t frames_waiting = 0;
      for (const Queued& q : queue_) {
        if (q.pkt.wire_size() > kControlMessageBytes) ++frames_waiting;
      }
      const std::size_t controls_waiting = queue_.size() - frames_waiting;
      const bool admit = control ? controls_waiting < config_.busy_buffer_capacity
                                 : frames_waiting < kBusyFrameBufferCapacity;
      if (admit) {
        trace_begin(telemetry::spans::kSocketBuffer, pkt.header, rt_.now());
        queue_.push_back(Queued{std::move(pkt), rt_.now()});
      } else {
        ++stats_.dropped_busy;
        stats_.drops_per_sec.add(rt_.now());
        trace_instant(telemetry::spans::kDropBusy, pkt.header, rt_.now());
      }
      return;
    }
    dispatch(std::move(pkt), /*queue_time=*/0);
    return;
  }

  // Sidecar mode: queue and filter. The filter keeps only the newest
  // outstanding frame per client: a newer frame supersedes an older
  // queued one from the same stream (superseded frames count as queue
  // drops). Without this, FIFO + staleness threshold degenerates at
  // overload — the head of the queue is always nearly expired and
  // nothing survives the downstream stages.
  if (pkt.header.kind == wire::MessageKind::kFrameData) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->pkt.header.kind == wire::MessageKind::kFrameData &&
          it->pkt.header.client == pkt.header.client) {
        const std::uint64_t old_bytes = it->pkt.wire_size();
        queue_bytes_ = old_bytes > queue_bytes_ ? 0 : queue_bytes_ - old_bytes;
        free_app_memory(old_bytes);
        trace_end(telemetry::spans::kSidecarQueue, it->pkt.header, rt_.now());
        trace_instant(telemetry::spans::kDropStale, it->pkt.header, rt_.now());
        queue_.erase(it);
        ++stats_.dropped_stale;
        stats_.drops_per_sec.add(rt_.now());
        break;
      }
    }
  }
  if (config_.queue_capacity != 0 && queue_.size() >= config_.queue_capacity) {
    ++stats_.dropped_overflow;
    stats_.drops_per_sec.add(rt_.now());
    trace_instant(telemetry::spans::kDropOverflow, pkt.header, rt_.now());
    return;
  }
  // The sidecar pre-allocates per-stream buffers on first contact.
  if (known_clients_.insert(pkt.header.client.value()).second) {
    alloc_app_memory(costs_.sidecar_client_buffer_bytes);
  }
  const std::uint64_t bytes = pkt.wire_size();
  queue_bytes_ += bytes;
  alloc_app_memory(bytes);
  trace_begin(telemetry::spans::kSidecarQueue, pkt.header, rt_.now());
  queue_.push_back(Queued{std::move(pkt), rt_.now()});
  pump();
}

void ServiceHost::pump() {
  if (busy_ || down_ || pump_scheduled_) return;
  while (!queue_.empty()) {
    Queued q = std::move(queue_.front());
    queue_.pop_front();
    const std::uint64_t bytes = q.pkt.wire_size();
    queue_bytes_ = bytes > queue_bytes_ ? 0 : queue_bytes_ - bytes;
    free_app_memory(bytes);

    trace_end(telemetry::spans::kSidecarQueue, q.pkt.header, rt_.now());

    // Staleness filter: the sidecar tracks its own queueing time and
    // drops frames whose wait exceeded the timing threshold (the
    // paper's 100 ms budget) at dequeue.
    const SimDuration age = rt_.now() - q.enqueued_at;
    if (costs_.sidecar_threshold > 0 && age > costs_.sidecar_threshold) {
      ++stats_.dropped_stale;
      stats_.drops_per_sec.add(rt_.now());
      trace_instant(telemetry::spans::kDropStale, q.pkt.header, rt_.now());
      continue;
    }

    const SimDuration queue_time = rt_.now() - q.enqueued_at;
    stats_.queue_time_ms.add(to_millis(queue_time));

    // gRPC hand-off from sidecar to service. The hand-off time counts
    // toward the observed per-service latency (the paper's "slightly
    // higher per service latency" in scAtteR++).
    busy_ = true;
    pump_scheduled_ = true;
    const SimTime handoff_start = rt_.now();
    {
      auto& tracer = telemetry::Tracer::instance();
      if (tracer.enabled() && q.pkt.header.trace.active()) {
        tracer.complete(instance_.value(), telemetry::spans::kRpcHandoff, handoff_start,
                        costs_.sidecar_rpc_overhead, q.pkt.header.client,
                        q.pkt.header.frame, config_.stage, 0.0,
                        q.pkt.header.trace.trace_id);
      }
    }
    rt_.schedule_after(costs_.sidecar_rpc_overhead,
                       [this, pkt = std::move(q.pkt), queue_time, handoff_start]() mutable {
                         pump_scheduled_ = false;
                         busy_ = false;  // dispatch() re-asserts
                         dispatch(std::move(pkt), queue_time, handoff_start);
                       });
    return;
  }
}

void ServiceHost::dispatch(wire::FramePacket pkt, SimDuration queue_time, SimTime dispatch_ts) {
  busy_ = true;
  dispatch_ts_ = dispatch_ts < 0 ? rt_.now() : dispatch_ts;
  ++stats_.dispatched;
  current_header_ = pkt.header;
  // The span brackets exactly what process_time_ms samples (dispatch ->
  // finish, including any RPC hand-off already underway); the message
  // kind rides in `value` so analysis can split frame work from
  // state-fetch serving.
  trace_begin(telemetry::spans::kService, pkt.header, dispatch_ts_,
              static_cast<double>(pkt.header.kind));

  // Record the hop telemetry scAtteR++ attaches to the data's state;
  // process_time is filled in at finish_current().
  if (config_.mode == IngressMode::kSidecar) {
    pkt.hops.push_back(wire::HopRecord{config_.stage, queue_time, 0});
  }
  servicelet_->process(std::move(pkt));
}

void ServiceHost::finish_current() {
  if (!busy_) return;
  busy_ = false;
  ++stats_.completed;
  stats_.process_time_ms.add(to_millis(rt_.now() - dispatch_ts_));
  trace_end(telemetry::spans::kService, current_header_, rt_.now());
  if (config_.mode == IngressMode::kSidecar) {
    // Defer the pump one event-loop turn to avoid re-entrant dispatch
    // from inside a servicelet callback.
    rt_.schedule_after(0, [this] { pump(); });
  } else if (!queue_.empty()) {
    // Drain the socket buffer: read the next waiting datagram.
    rt_.schedule_after(0, [this] {
      if (busy_ || down_ || queue_.empty()) return;
      Queued q = std::move(queue_.front());
      queue_.pop_front();
      const SimDuration waited = rt_.now() - q.enqueued_at;
      stats_.queue_time_ms.add(to_millis(waited));
      trace_end(telemetry::spans::kSocketBuffer, q.pkt.header, rt_.now());
      dispatch(std::move(q.pkt), waited);
    });
  }
}

void ServiceHost::kill() {
  if (down_) return;
  down_ = true;
  busy_ = false;
  if (config_.mode == IngressMode::kSidecar) {
    // Sidecar queue entries are accounted as app memory; return them.
    for (const Queued& q : queue_) {
      const std::uint64_t bytes = q.pkt.wire_size();
      queue_bytes_ = bytes > queue_bytes_ ? 0 : queue_bytes_ - bytes;
      free_app_memory(bytes);
    }
  }
  queue_.clear();
  // The crashed process keeps nothing: the servicelet drops any
  // in-memory state (scAtteR's sift store empties here).
  servicelet_->on_killed();
}

void ServiceHost::restart() {
  if (decommissioned_) return;
  down_ = false;
  pump();
}

void ServiceHost::decommission() {
  kill();
  if (decommissioned_) return;
  machine_.memory().free(base_memory_ + app_memory_);
  rt_.rebind_endpoint(ingress_, nullptr);
  decommissioned_ = true;
}

}  // namespace mar::dsp
