#include "dsp/compute.h"

#include <utility>

#include "telemetry/profiler.h"

namespace mar::dsp {

ComputeContext::ComputeContext(Runtime& rt, hw::Machine& machine, bool uses_gpu, Rng rng)
    : rt_(rt), machine_(machine), uses_gpu_(uses_gpu && machine.num_gpus() > 0), rng_(rng) {
  if (uses_gpu_) gpu_index_ = machine_.pin_service_to_gpu();
}

void ComputeContext::run(SimDuration cpu_mean, SimDuration gpu_mean, double noise_cv,
                         std::function<void()> done) {
  // Scale reference times to this machine, then add execution noise.
  const auto scaled_cpu =
      static_cast<SimDuration>(static_cast<double>(cpu_mean) * machine_.cpu_time_scale());
  const auto scaled_gpu = static_cast<SimDuration>(
      static_cast<double>(gpu_mean) *
      (uses_gpu_ ? machine_.gpu_time_scale(gpu_index_) : machine_.cpu_time_scale() * 4.0));
  const SimDuration cpu_time = hw::CostModel::sample(scaled_cpu, noise_cv, rng_);
  const SimDuration gpu_time = hw::CostModel::sample(scaled_gpu, noise_cv, rng_);

  // Hold one core for the whole operation; the GPU (if any) only for
  // the kernel portion. GPU-less machines run kernels on the CPU at a
  // 4x penalty (already applied above).
  machine_.cpu().acquire(1, [this, cpu_time, gpu_time, done = std::move(done)]() mutable {
    const SimTime cpu_start = rt_.now();
    rt_.schedule_after(cpu_time, [this, cpu_start, gpu_time, done = std::move(done)]() mutable {
      if (gpu_time <= 0) {
        cpu_busy_ += rt_.now() - cpu_start;
        machine_.cpu().release(1);
        done();
        return;
      }
      auto finish_gpu = [this, cpu_start, done = std::move(done)](SimTime gpu_start) mutable {
        gpu_busy_ += rt_.now() - gpu_start;
        cpu_busy_ += rt_.now() - cpu_start;
        machine_.cpu().release(1);
        done();
      };
      if (uses_gpu_) {
        machine_.gpu(gpu_index_).acquire(1, [this, gpu_time,
                                             finish = std::move(finish_gpu)]() mutable {
          const SimTime gpu_start = rt_.now();
          rt_.schedule_after(gpu_time, [this, gpu_start, finish = std::move(finish)]() mutable {
            machine_.gpu(gpu_index_).release(1);
            finish(gpu_start);
          });
        });
      } else {
        const SimTime gpu_start = rt_.now();
        rt_.schedule_after(gpu_time, [gpu_start, finish = std::move(finish_gpu)]() mutable {
          finish(gpu_start);
        });
      }
    });
  });
}

void ComputeContext::run_stage(const hw::CostModel& costs, Stage stage,
                               std::function<void()> done) {
  // Stage names from to_string() are string literals, so they are safe
  // to hand to the profiler. In a DES run this annotates the event-loop
  // CPU spent scheduling each stage (the modeled service time itself
  // burns no real CPU).
  telemetry::ProfScope prof(to_string(stage));
  const hw::StageCost& c = costs.stage(stage);
  run(c.cpu_time, c.gpu_time, c.noise_cv, std::move(done));
}

}  // namespace mar::dsp
