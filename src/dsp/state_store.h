// In-memory frame-state store for the stateful sift service (scAtteR).
//
// sift keeps each frame's extracted features in memory until matching
// fetches them for pose estimation, or until a timeout evicts them.
// When downstream drops a frame, its state is orphaned and sits in
// memory for the full timeout — the mechanism behind the paper's
// multi-gigabyte memory growth under load (§4, Fig. 2).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/time.h"
#include "common/types.h"

namespace mar::dsp {

class ServiceHost;

class StateStore {
 public:
  // `entry_bytes` is the modeled in-memory size of one frame's state.
  StateStore(ServiceHost& host, SimDuration timeout, std::uint64_t entry_bytes);
  ~StateStore();

  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  // Store state for (client, frame). Overwrites an existing entry.
  void put(ClientId client, FrameId frame);

  // Fetch-and-erase. Returns false when missing (never stored, already
  // fetched, or evicted by timeout).
  bool take(ClientId client, FrameId frame);

  // Crash path: drop every entry at once (the process died). Frees the
  // accounted memory; entries lost this way are counted separately from
  // timeout orphans. Subsequent take() calls miss, failing the frames
  // that depended on the state.
  void clear();

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t bytes() const { return entry_bytes_ * entries_.size(); }
  // Entries that timed out without ever being fetched.
  [[nodiscard]] std::uint64_t orphaned() const { return orphaned_; }
  // Entries dropped by clear() — i.e. lost to a replica crash.
  [[nodiscard]] std::uint64_t lost_to_crash() const { return lost_to_crash_; }

 private:
  static std::uint64_t key(ClientId c, FrameId f) {
    return (static_cast<std::uint64_t>(c.value()) << 40) ^ f.value();
  }

  void sweep();

  ServiceHost& host_;
  SimDuration timeout_;
  std::uint64_t entry_bytes_;
  std::unordered_map<std::uint64_t, SimTime> entries_;  // key -> expiry
  std::uint64_t orphaned_ = 0;
  std::uint64_t lost_to_crash_ = 0;
  bool sweep_scheduled_ = false;
  // Guards the sweep timer against firing after destruction.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace mar::dsp
