#include "dsp/state_store.h"

#include "dsp/service_host.h"
#include "telemetry/profiler.h"

namespace mar::dsp {

namespace {
constexpr SimDuration kSweepInterval = millis(250.0);
}

StateStore::StateStore(ServiceHost& host, SimDuration timeout, std::uint64_t entry_bytes)
    : host_(host), timeout_(timeout), entry_bytes_(entry_bytes) {}

StateStore::~StateStore() {
  *alive_ = false;
  // Return the accounted bytes of any entries still resident.
  host_.free_app_memory(entry_bytes_ * entries_.size());
}

void StateStore::put(ClientId client, FrameId frame) {
  auto [it, inserted] = entries_.try_emplace(key(client, frame), host_.runtime().now() + timeout_);
  if (!inserted) {
    it->second = host_.runtime().now() + timeout_;
    return;
  }
  host_.alloc_app_memory(entry_bytes_);
  // Mirror the modeled per-frame state bytes into the allocation
  // profiler so simulated stateful services show up in /debug/pprof/heap
  // next to the real vision allocations.
  telemetry::profile_alloc_as("dsp_state", entry_bytes_);
  if (!sweep_scheduled_) {
    sweep_scheduled_ = true;
    host_.runtime().schedule_after(kSweepInterval, [this, alive = alive_] {
      if (*alive) sweep();
    });
  }
}

bool StateStore::take(ClientId client, FrameId frame) {
  auto it = entries_.find(key(client, frame));
  if (it == entries_.end()) return false;
  if (it->second < host_.runtime().now()) {
    // Expired but not yet swept: treat as gone.
    entries_.erase(it);
    host_.free_app_memory(entry_bytes_);
    ++orphaned_;
    return false;
  }
  entries_.erase(it);
  host_.free_app_memory(entry_bytes_);
  return true;
}

void StateStore::clear() {
  host_.free_app_memory(entry_bytes_ * entries_.size());
  lost_to_crash_ += entries_.size();
  entries_.clear();
  // A pending sweep may still fire; it finds an empty map and
  // unschedules itself (sweep_scheduled_ stays true until then so a
  // put() in the meantime does not double-schedule).
}

void StateStore::sweep() {
  const SimTime now = host_.runtime().now();
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second < now) {
      it = entries_.erase(it);
      host_.free_app_memory(entry_bytes_);
      ++orphaned_;
    } else {
      ++it;
    }
  }
  if (entries_.empty()) {
    sweep_scheduled_ = false;
    return;
  }
  host_.runtime().schedule_after(kSweepInterval, [this, alive = alive_] {
    if (*alive) sweep();
  });
}

}  // namespace mar::dsp
