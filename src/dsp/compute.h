// Models a service's per-frame compute against the machine's CPU/GPU
// pools: one CPU core is held for the whole operation, the pinned GPU
// exclusively for the kernel portion. Contention between co-located
// services emerges from pool queueing.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "common/time.h"
#include "hw/cost_model.h"
#include "hw/machine.h"
#include "dsp/runtime.h"

namespace mar::dsp {

class ComputeContext {
 public:
  // `uses_gpu` services are pinned to a GPU chosen at placement time.
  ComputeContext(Runtime& rt, hw::Machine& machine, bool uses_gpu, Rng rng);

  // Run a modeled computation of `cpu_mean`/`gpu_mean` (speed-1.0
  // reference times, scaled by this machine and noised), then `done`.
  void run(SimDuration cpu_mean, SimDuration gpu_mean, double noise_cv,
           std::function<void()> done);

  // Convenience: run the cost model's entry for `stage`.
  void run_stage(const hw::CostModel& costs, Stage stage, std::function<void()> done);

  [[nodiscard]] hw::Machine& machine() { return machine_; }
  [[nodiscard]] std::size_t gpu_index() const { return gpu_index_; }
  [[nodiscard]] bool uses_gpu() const { return uses_gpu_; }

  // Busy-time integrals attributed to this service instance, for the
  // paper's per-service stacked utilization plots.
  [[nodiscard]] SimDuration cpu_busy() const { return cpu_busy_; }
  [[nodiscard]] SimDuration gpu_busy() const { return gpu_busy_; }
  void reset_busy() {
    cpu_busy_ = 0;
    gpu_busy_ = 0;
  }

 private:
  Runtime& rt_;
  hw::Machine& machine_;
  bool uses_gpu_;
  std::size_t gpu_index_ = 0;
  Rng rng_;
  SimDuration cpu_busy_ = 0;
  SimDuration gpu_busy_ = 0;
};

}  // namespace mar::dsp
