// ServiceHost: one deployed replica of a pipeline service.
//
// Owns the ingress endpoint, the ingress policy, the compute context,
// and all per-replica telemetry. Two ingress modes reproduce the two
// systems in the paper:
//
//  * kDropWhenBusy (scAtteR): each service processes one frame at a
//    time; requests arriving while busy are dropped (§3.1).
//  * kSidecar (scAtteR++): a sidecar queues and filters incoming
//    requests, drops frames older than the staleness threshold at
//    dequeue time, and hands frames to the service over an
//    accounted RPC hop in FIFO order (§5).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_set>

#include "common/rng.h"
#include "common/types.h"
#include "dsp/compute.h"
#include "dsp/runtime.h"
#include "dsp/servicelet.h"
#include "hw/cost_model.h"
#include "hw/machine.h"
#include "telemetry/histogram.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"
#include "wire/message.h"

namespace mar::dsp {

enum class IngressMode {
  kDropWhenBusy,  // scAtteR
  kSidecar,       // scAtteR++
};

struct HostStats {
  std::uint64_t received = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t completed = 0;
  std::uint64_t dropped_busy = 0;      // scAtteR: arrived while busy
  std::uint64_t dropped_stale = 0;     // scAtteR++: exceeded threshold at dequeue
  std::uint64_t dropped_overflow = 0;  // scAtteR++: queue capacity exceeded
  std::uint64_t dropped_down = 0;      // replica was down (failure injection)
  std::uint64_t tx_suppressed = 0;     // sends attempted while down (dead replica)
  std::uint64_t tx_unroutable = 0;     // sends to an unresolved stage (no live replica)

  telemetry::Histogram queue_time_ms;    // sidecar queueing delay
  telemetry::Histogram process_time_ms;  // dispatch -> finish (incl. RPC overhead)
  telemetry::TimeSeries ingress_per_sec{kSecond};  // arrivals (ingress FPS)
  telemetry::TimeSeries drops_per_sec{kSecond};    // all drops

  [[nodiscard]] std::uint64_t dropped_total() const {
    return dropped_busy + dropped_stale + dropped_overflow + dropped_down;
  }

  // Clear counters and latency histograms for a fresh measurement
  // window; the per-second time series keep accumulating (they are
  // time-indexed over the whole run, used by the sidecar analytics).
  void reset_window() {
    received = dispatched = completed = 0;
    dropped_busy = dropped_stale = dropped_overflow = dropped_down = 0;
    tx_suppressed = tx_unroutable = 0;
    queue_time_ms.reset();
    process_time_ms.reset();
  }
  // Fraction of received requests dropped by this replica.
  [[nodiscard]] double drop_ratio() const {
    return received ? static_cast<double>(dropped_total()) / static_cast<double>(received) : 0.0;
  }
};

struct HostConfig {
  Stage stage = Stage::kPrimary;
  IngressMode mode = IngressMode::kDropWhenBusy;
  bool uses_gpu = false;
  // Sidecar queue capacity (frames). 0 = unbounded.
  std::size_t queue_capacity = 256;
  // kDropWhenBusy: datagrams that arrive while the service is busy sit
  // in the UDP socket buffer until it overflows — the application
  // "drops outstanding requests" but the kernel still holds a couple.
  // This is what makes E2E latency climb under load even without an
  // application-level queue.
  std::size_t busy_buffer_capacity = 2;
};

// Messages at or below this size count as control traffic and may wait
// in the socket buffer of a busy scAtteR service instead of being
// dropped (frames are far larger and are dropped outright).
inline constexpr std::size_t kControlMessageBytes = 4096;

// How many large frames the socket buffer of a busy scAtteR service can
// hold (a 720p frame nearly fills the default UDP rmem).
inline constexpr std::size_t kBusyFrameBufferCapacity = 1;

class ServiceHost {
 public:
  ServiceHost(Runtime& rt, hw::Machine& machine, InstanceId instance, HostConfig config,
              const hw::CostModel& costs, std::unique_ptr<Servicelet> servicelet, Rng rng);
  ~ServiceHost();

  ServiceHost(const ServiceHost&) = delete;
  ServiceHost& operator=(const ServiceHost&) = delete;

  // --- identity / wiring --------------------------------------------
  [[nodiscard]] InstanceId instance() const { return instance_; }
  [[nodiscard]] Stage stage() const { return config_.stage; }
  [[nodiscard]] IngressMode mode() const { return config_.mode; }
  [[nodiscard]] EndpointId ingress() const { return ingress_; }
  [[nodiscard]] hw::Machine& machine() { return machine_; }
  [[nodiscard]] Runtime& runtime() { return rt_; }
  [[nodiscard]] ComputeContext& compute() { return compute_; }
  [[nodiscard]] const hw::CostModel& costs() const { return costs_; }
  [[nodiscard]] Servicelet& servicelet() { return *servicelet_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  // --- servicelet API -------------------------------------------------
  // Mark the in-flight packet finished; the host becomes idle and (in
  // sidecar mode) pumps the next queued request.
  void finish_current();
  // Send a packet from this replica's endpoint. In sidecar mode the
  // outgoing frame's hop record is stamped with the processing time
  // spent at this stage so far (the telemetry scAtteR++ attaches to
  // the data's state).
  void send(EndpointId to, wire::FramePacket pkt) {
    // A dead process emits nothing: compute callbacks that were already
    // in flight when the replica was killed get their sends swallowed
    // (counted, so failure analyses can see them).
    if (down_) {
      ++stats_.tx_suppressed;
      return;
    }
    // The router found no live replica for the next hop: the frame is
    // deliberately failed here rather than sent into the void.
    if (!to.valid()) {
      ++stats_.tx_unroutable;
      trace_instant(telemetry::spans::kDropDown, pkt.header, rt_.now());
      return;
    }
    if (config_.mode == IngressMode::kSidecar && busy_ && !pkt.hops.empty()) {
      wire::HopRecord& hop = pkt.hops.back();
      if (hop.stage == config_.stage && hop.process_time == 0) {
        hop.process_time = rt_.now() - dispatch_ts_;
      }
    }
    rt_.send(ingress_, to, std::move(pkt));
  }
  // Attribute application memory (state entries, buffers) to this
  // replica and the machine.
  void alloc_app_memory(std::uint64_t bytes);
  void free_app_memory(std::uint64_t bytes);

  // --- failure injection ---------------------------------------------
  [[nodiscard]] bool is_down() const { return down_; }
  void kill();     // stop handling traffic, drop queue, drop servicelet state
  void restart();  // resume handling traffic (no-op once decommissioned)
  // Failover eviction: permanently retire this replica — kill it,
  // return its resident memory to the machine, and unbind the ingress
  // handler. The object stays alive (parked by the orchestrator) only
  // to absorb stray event-loop callbacks already scheduled against it.
  void decommission();
  [[nodiscard]] bool is_decommissioned() const { return decommissioned_; }

  // --- telemetry -------------------------------------------------------
  [[nodiscard]] HostStats& stats() { return stats_; }
  [[nodiscard]] const HostStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  // Resident bytes attributed to this replica (base + app).
  [[nodiscard]] std::uint64_t memory_used() const { return base_memory_ + app_memory_; }
  // Application/state bytes only (state-store entries, buffers) — the
  // part that grows with orphaned state, separated out for the
  // utilization timelines.
  [[nodiscard]] std::uint64_t app_memory_used() const { return app_memory_; }
  [[nodiscard]] bool busy() const { return busy_; }

 private:
  struct Queued {
    wire::FramePacket pkt;
    SimTime enqueued_at;
  };

  void handle_datagram(wire::FramePacket pkt);
  // dispatch_ts < 0 means "now".
  void dispatch(wire::FramePacket pkt, SimDuration queue_time, SimTime dispatch_ts = -1);
  void pump();

  // Tracing: record an event on this replica's track for a traced
  // frame. The header's trace id rides along so flight-recorded frames
  // buffer their events until the completion-point retention verdict.
  void trace_begin(const char* name, const wire::FrameHeader& h, SimTime ts,
                   double value = 0.0) {
    auto& tracer = telemetry::Tracer::instance();
    if (tracer.enabled() && h.trace.active()) {
      tracer.begin(instance_.value(), name, ts, h.client, h.frame, config_.stage, value,
                   h.trace.trace_id);
    }
  }
  void trace_end(const char* name, const wire::FrameHeader& h, SimTime ts) {
    auto& tracer = telemetry::Tracer::instance();
    if (tracer.enabled() && h.trace.active()) {
      tracer.end(instance_.value(), name, ts, h.client, h.frame, config_.stage, 0.0,
                 h.trace.trace_id);
    }
  }
  void trace_instant(const char* name, const wire::FrameHeader& h, SimTime ts) {
    auto& tracer = telemetry::Tracer::instance();
    if (tracer.enabled() && h.trace.active()) {
      tracer.instant(instance_.value(), name, ts, h.client, h.frame, config_.stage, 0.0,
                     h.trace.trace_id);
    }
  }

  Runtime& rt_;
  hw::Machine& machine_;
  InstanceId instance_;
  HostConfig config_;
  const hw::CostModel& costs_;
  std::unique_ptr<Servicelet> servicelet_;
  Rng rng_;
  ComputeContext compute_;
  EndpointId ingress_;

  bool busy_ = false;
  bool down_ = false;
  bool decommissioned_ = false;
  bool pump_scheduled_ = false;
  SimTime dispatch_ts_ = 0;
  // Header of the in-flight packet, kept so finish_current() can close
  // the frame's compute span (the packet itself moved into the servicelet).
  wire::FrameHeader current_header_;
  std::deque<Queued> queue_;
  std::uint64_t queue_bytes_ = 0;
  std::unordered_set<std::uint32_t> known_clients_;

  std::uint64_t base_memory_ = 0;
  std::uint64_t app_memory_ = 0;
  HostStats stats_;
};

}  // namespace mar::dsp
